"""Unit tests for the bridge."""

from repro.mem.addr import AddrRange
from repro.mem.bridge import Bridge
from repro.mem.packet import MemCmd
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster, FakeSlave


def build(sim, **kwargs):
    bridge = Bridge(sim, "bridge", ranges=[AddrRange(0x0, 0x100000)], **kwargs)
    master = FakeMaster(sim)
    slave = FakeSlave(sim, latency=100)
    master.port.bind(bridge.slave_port)
    bridge.master_port.bind(slave.port)
    return bridge, master, slave


def test_request_and_response_delayed():
    sim = Simulator()
    bridge, master, slave = build(sim, delay=1_000)
    master.read(0x40, 64)
    sim.run()
    assert slave.request_ticks == [1_000]
    assert master.response_ticks == [1_000 + 100 + 1_000]


def test_ranges_reprogrammable():
    sim = Simulator()
    bridge, *_ = build(sim)
    bridge.set_ranges([AddrRange(0x30000000, 0x1000)])
    assert bridge.slave_port.get_ranges() == [AddrRange(0x30000000, 0x1000)]


def test_bounded_request_queue_refuses_then_recovers():
    sim = Simulator()
    bridge, master, slave = build(sim, delay=1_000, req_queue_size=2)
    for i in range(8):
        master.read(i * 64, 64)
    sim.run()
    assert len(master.responses) == 8
    assert len(slave.requests) == 8


def test_bounded_response_queue_backpressure():
    sim = Simulator()
    bridge, master, slave = build(sim, delay=1_000, resp_queue_size=1)
    for i in range(4):
        master.read(i * 64, 64)
    sim.run()
    assert len(master.responses) == 4


def test_forwarded_stat():
    sim = Simulator()
    bridge, master, slave = build(sim)
    master.write(0x0, 64)
    master.read(0x40, 64)
    sim.run()
    assert bridge.forwarded.value() == 2
