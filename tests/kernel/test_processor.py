"""Unit tests for the abstract processor."""

from repro.kernel.processor import Processor
from repro.mem.packet import MemCmd
from repro.sim import ticks
from repro.sim.process import Process
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeSlave


def build(sim, latency=ticks.from_ns(100)):
    cpu = Processor(sim)
    target = FakeSlave(sim, "target", latency=latency)
    cpu.port.bind(target.port)
    return cpu, target


def test_timed_read_returns_response_and_takes_time():
    sim = Simulator()
    cpu, target = build(sim)
    results = {}

    def body():
        resp = yield from cpu.timed_read(0x1000, 4)
        results["value"] = cpu.read_value(resp)
        results["tick"] = sim.curtick

    Process(sim, "p", body())
    sim.run()
    assert results["value"] == 0
    assert results["tick"] >= ticks.from_ns(100)
    assert cpu.reads_issued.value() == 1


def test_timed_write_carries_payload():
    sim = Simulator()
    cpu, target = build(sim)

    def body():
        yield from cpu.timed_write(0x2000, 0xCAFE, 4)

    Process(sim, "p", body())
    sim.run()
    assert target.requests[0].cmd is MemCmd.WRITE_REQ
    assert target.requests[0].data == (0xCAFE).to_bytes(4, "little")
    assert cpu.writes_issued.value() == 1


def test_mmio_latency_distribution_sampled():
    sim = Simulator()
    cpu, target = build(sim, latency=ticks.from_ns(200))

    def body():
        for __ in range(3):
            yield from cpu.timed_read(0x1000, 4)

    Process(sim, "p", body())
    sim.run()
    assert cpu.mmio_latency.count == 3
    assert cpu.mmio_latency.mean >= ticks.from_ns(200)


def test_concurrent_processes_issue_independently():
    sim = Simulator()
    cpu, target = build(sim)
    done = []

    def body(i):
        yield from cpu.timed_read(0x1000 + i * 4, 4)
        done.append(i)

    for i in range(4):
        Process(sim, f"p{i}", body(i))
    sim.run()
    assert sorted(done) == [0, 1, 2, 3]
