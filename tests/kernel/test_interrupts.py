"""Unit tests for the interrupt controller."""

import pytest

from repro.kernel.interrupts import InterruptController
from repro.sim import ticks
from repro.sim.process import Delay
from repro.sim.simobject import Simulator


def test_handler_runs_after_dispatch_latency():
    sim = Simulator()
    intc = InterruptController(sim, dispatch_latency=ticks.from_ns(500))
    fired = []

    def handler():
        fired.append(sim.curtick)
        yield Delay(0)

    intc.register(40, handler)
    intc.raise_irq(40)
    sim.run()
    assert fired == [ticks.from_ns(500)]
    assert intc.dispatched.value() == 1


def test_unhandled_line_is_spurious():
    sim = Simulator()
    intc = InterruptController(sim)
    intc.raise_irq(99)
    sim.run()
    assert intc.spurious.value() == 1
    assert intc.dispatched.value() == 0


def test_double_registration_rejected():
    sim = Simulator()
    intc = InterruptController(sim)
    intc.register(1, lambda: iter(()))
    with pytest.raises(ValueError):
        intc.register(1, lambda: iter(()))


def test_unregister_then_reregister():
    sim = Simulator()
    intc = InterruptController(sim)
    intc.register(1, lambda: iter(()))
    intc.unregister(1)
    intc.register(1, lambda: iter(()))


def test_pending_assertions_coalesce():
    sim = Simulator()
    intc = InterruptController(sim, dispatch_latency=ticks.from_ns(500))
    count = []

    def handler():
        count.append(1)
        yield Delay(0)

    intc.register(7, handler)
    intc.raise_irq(7)
    intc.raise_irq(7)  # still pending: coalesces
    sim.run()
    assert sum(count) == 1
    assert intc.coalesced.value() == 1
    # A later assertion dispatches again.
    intc.raise_irq(7)
    sim.run()
    assert sum(count) == 2


def test_distinct_lines_dispatch_independently():
    sim = Simulator()
    intc = InterruptController(sim)
    hits = []

    def make(line):
        def handler():
            hits.append(line)
            yield Delay(0)
        return handler

    intc.register(1, make(1))
    intc.register(2, make(2))
    intc.raise_irq(1)
    intc.raise_irq(2)
    sim.run()
    assert sorted(hits) == [1, 2]
