"""Unit tests for the block layer, using a stub driver."""

import pytest

from repro.kernel.blockio import BlockLayer
from repro.sim import ticks
from repro.sim.process import Process, Signal
from repro.sim.simobject import Simulator


class StubDriver:
    """Completes each request after a fixed simulated latency."""

    sector_size = 4096

    def __init__(self, sim, request_latency=ticks.from_us(10)):
        self.sim = sim
        self.request_latency = request_latency
        self.requests = []

    def start_request(self, lba, n_sectors, buffer_addr, is_write):
        self.requests.append((lba, n_sectors, buffer_addr, is_write))
        done = Signal("stub_done")
        self.sim.schedule_callback(self.request_latency, done.notify)
        return done
        yield  # pragma: no cover — makes this a generator


def run_read(sim, layer, driver, lba, n_sectors, buf=0x90000000):
    done = {}

    def body():
        yield from layer.read(driver, lba, n_sectors, buf)
        done["tick"] = sim.curtick

    Process(sim, "reader", body())
    sim.run()
    return done


def test_split_into_bounded_requests():
    sim = Simulator()
    layer = BlockLayer(sim, max_sectors_per_request=32,
                       submit_overhead=0, complete_overhead=0,
                       per_sector_overhead=0)
    driver = StubDriver(sim)
    run_read(sim, layer, driver, lba=0, n_sectors=80)
    assert [r[1] for r in driver.requests] == [32, 32, 16]
    assert [r[0] for r in driver.requests] == [0, 32, 64]
    # Buffer advances by request bytes.
    assert driver.requests[1][2] == 0x90000000 + 32 * 4096
    assert layer.sectors_moved.value() == 80


def test_requests_serialized():
    sim = Simulator()
    layer = BlockLayer(sim, max_sectors_per_request=10,
                       submit_overhead=0, complete_overhead=0,
                       per_sector_overhead=0)
    driver = StubDriver(sim, request_latency=ticks.from_us(10))
    done = run_read(sim, layer, driver, lba=0, n_sectors=30)
    # Three requests, each waiting 10 us, strictly one at a time.
    assert done["tick"] >= 3 * ticks.from_us(10)


def test_overheads_charged():
    sim = Simulator()
    layer = BlockLayer(
        sim,
        max_sectors_per_request=8,
        submit_overhead=ticks.from_us(4),
        complete_overhead=ticks.from_us(3),
        per_sector_overhead=ticks.from_us(1),
    )
    driver = StubDriver(sim, request_latency=0)
    done = run_read(sim, layer, driver, lba=0, n_sectors=8)
    # 4 (submit) + 8x1 (per sector) + 3 (complete) = 15 us of software.
    assert done["tick"] == ticks.from_us(15)


def test_write_direction():
    sim = Simulator()
    layer = BlockLayer(sim, submit_overhead=0, complete_overhead=0,
                       per_sector_overhead=0)
    driver = StubDriver(sim)

    def body():
        yield from layer.write(driver, 4, 2, 0xA0000000)

    Process(sim, "writer", body())
    sim.run()
    assert driver.requests == [(4, 2, 0xA0000000, True)]


def test_parameter_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        BlockLayer(sim, max_sectors_per_request=0)
    layer = BlockLayer(sim, name="bl2")
    driver = StubDriver(sim)
    with pytest.raises(ValueError):
        list(layer.read(driver, 0, 0, 0x0))


def test_request_time_distribution():
    sim = Simulator()
    layer = BlockLayer(sim, max_sectors_per_request=4,
                       submit_overhead=0, complete_overhead=0,
                       per_sector_overhead=0)
    driver = StubDriver(sim, request_latency=ticks.from_us(5))
    run_read(sim, layer, driver, lba=0, n_sectors=8)
    assert layer.request_ticks.count == 2
    assert layer.request_ticks.mean >= ticks.from_us(5)
