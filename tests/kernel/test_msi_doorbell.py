"""Unit tests for the MSI doorbell."""

import pytest

from repro.kernel.interrupts import InterruptController, MsiDoorbell
from repro.mem.packet import MemCmd, Packet
from repro.sim import ticks
from repro.sim.process import Delay
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster


def build(sim):
    intc = InterruptController(sim, dispatch_latency=0)
    doorbell = MsiDoorbell(sim, intc=intc, latency=ticks.from_ns(50))
    device = FakeMaster(sim, "device")
    device.port.bind(doorbell.port)
    return intc, doorbell, device


def test_requires_interrupt_controller():
    with pytest.raises(ValueError):
        MsiDoorbell(Simulator())


def test_posted_write_raises_vector_from_payload():
    sim = Simulator()
    intc, doorbell, device = build(sim)
    fired = []

    def handler():
        fired.append(sim.curtick)
        yield Delay(0)

    intc.register(42, handler)
    msi = Packet(MemCmd.MESSAGE, doorbell.range.start, 4,
                 data=(42).to_bytes(4, "little"))
    device._queue.push(msi)
    sim.run()
    assert fired == [ticks.from_ns(50)]
    assert doorbell.msis_received.value() == 1


def test_non_posted_write_also_works_and_responds():
    sim = Simulator()
    intc, doorbell, device = build(sim)

    def handler():
        yield Delay(0)

    intc.register(7, handler)
    device.write(doorbell.range.start, 4, data=(7).to_bytes(4, "little"))
    sim.run()
    assert len(device.responses) == 1
    assert doorbell.msis_received.value() == 1


def test_unregistered_vector_is_spurious():
    sim = Simulator()
    intc, doorbell, device = build(sim)
    msi = Packet(MemCmd.MESSAGE, doorbell.range.start, 4,
                 data=(99).to_bytes(4, "little"))
    device._queue.push(msi)
    sim.run()
    assert intc.spurious.value() == 1


def test_range_claimed_for_routing():
    sim = Simulator()
    intc, doorbell, device = build(sim)
    assert doorbell.port.get_ranges() == [doorbell.range]
