"""Unit tests for the reporting helpers."""

from repro.analysis.report import Series, Table, format_table


def test_series_accumulates_points():
    s = Series("phys")
    s.add(64, 3.1)
    s.add(128, 3.2)
    assert s[64] == 3.1
    assert s.xs() == [64, 128]


def test_table_collects_xs_across_series():
    t = Table("Fig 9(a)", "block_MB", "Gbps")
    a = t.new_series("phys")
    b = t.new_series("L150")
    a.add(64, 3.1)
    b.add(128, 2.6)
    assert t.xs() == [64, 128]


def test_format_table_renders_missing_as_dash():
    t = Table("demo", "x", "y")
    a = t.new_series("a")
    a.add(1, 1.0)
    b = t.new_series("b")
    b.add(2, 2.0)
    text = format_table(t, "{:.1f}")
    assert "demo" in text
    lines = text.splitlines()
    assert lines[1].split() == ["x", "a", "b"]
    assert "-" in lines[3]  # series b has no x=1 point
    assert "1.0" in text and "2.0" in text


def test_format_empty_table():
    t = Table("empty", "x", "y")
    t.new_series("a")
    assert "empty" in format_table(t)


def test_link_replay_stats_shape():
    from repro.analysis.report import link_replay_stats
    from repro.pcie.link import PcieLink
    from repro.sim.simobject import Simulator

    link = PcieLink(Simulator(), "l")
    stats = link_replay_stats(link)
    assert stats["tlps_sent"] == 0
    assert stats["replay_fraction"] == 0.0
    assert stats["fc_stall_ticks"] == 0.0
    assert set(stats) == {
        "tlps_sent", "replays", "timeouts", "replay_fraction",
        "delivery_refused", "fc_stall_ticks",
    }


# ---------------------------------------------------------------------------
# Trace-to-latency breakdown
# ---------------------------------------------------------------------------

def synthetic_trace():
    """A hand-written lifecycle with known arithmetic: TLP 0's request
    is transmitted at 100, replayed at 300, delivered at 400, then sits
    in a root-complex port from 400 to 450."""
    return [
        {"t": 100, "cat": "link", "comp": "link.down_if", "ev": "tlp_tx",
         "tlp": 0, "seq": 0, "replay": False, "resp": False},
        {"t": 250, "cat": "link", "comp": "link.up_if", "ev": "tlp_refused",
         "tlp": 0, "seq": 0},
        {"t": 280, "cat": "link", "comp": "link.down_if", "ev": "replay_timeout",
         "pending": 1},
        {"t": 300, "cat": "link", "comp": "link.down_if", "ev": "tlp_tx",
         "tlp": 0, "seq": 0, "replay": True, "resp": False},
        {"t": 400, "cat": "link", "comp": "link.up_if", "ev": "tlp_deliver",
         "tlp": 0, "seq": 0, "resp": False},
        {"t": 400, "cat": "engine", "comp": "rc.up", "ev": "ingress",
         "tlp": 0, "resp": False, "pool": 1},
        {"t": 450, "cat": "engine", "comp": "rc.up", "ev": "egress",
         "tlp": 0, "resp": False, "pool": 0},
        {"t": 460, "cat": "link", "comp": "link.up_if", "ev": "dllp_tx",
         "kind": "ack", "seq": 0},
    ]


def test_breakdown_attributes_known_arithmetic():
    from repro.analysis.report import LATENCY_SCHEMA, trace_latency_breakdown

    breakdown = trace_latency_breakdown(synthetic_trace())
    assert breakdown["schema"] == LATENCY_SCHEMA
    rec = breakdown["tlps"]["0/req"]
    assert rec["link_ticks"] == 300           # first tx 100 -> deliver 400
    assert rec["replay_ticks"] == 200         # first tx 100 -> last tx 300
    assert rec["serialization_ticks"] == 100  # last tx 300 -> deliver 400
    assert rec["engine_ticks"] == 50          # ingress 400 -> egress 450
    assert rec["replays"] == 1
    assert rec["refusals"] == 1
    totals = breakdown["totals"]
    assert totals["tlps"] == 1
    assert totals["unresolved"] == 0
    counts = breakdown["event_counts"]
    assert counts["link.down_if"]["tlp_tx_replay"] == 1
    assert counts["link.down_if"]["replay_timeout"] == 1
    assert counts["link.up_if"]["tlp_refused"] == 1
    assert counts["link.up_if"]["dllp_tx_ack"] == 1


def test_breakdown_accepts_jsonl_path_and_lines(tmp_path):
    from repro.analysis.report import trace_latency_breakdown
    from repro.obs.trace import MemorySink

    sink = MemorySink()
    for ev in synthetic_trace():
        sink.record(ev)
    text = sink.to_jsonl(meta={"scenario": "synthetic"})
    path = tmp_path / "trace.jsonl"
    path.write_text(text)
    from_events = trace_latency_breakdown(sink.events)
    from_path = trace_latency_breakdown(str(path))
    from_lines = trace_latency_breakdown(text.splitlines())
    assert from_events == from_path == from_lines


def test_breakdown_reconciles_with_live_link_stats():
    from repro.analysis.report import (
        reconcile_trace_with_link,
        trace_latency_breakdown,
    )
    from repro.obs.trace import MemorySink
    from repro.pcie.link import PcieLink
    from repro.sim.simobject import Simulator
    from tests.mem.helpers import FakeMaster, FakeSlave

    sim = Simulator()
    link = PcieLink(sim, "link", error_rate=0.2, error_seed=11)
    device = FakeMaster(sim, "device")
    memory = FakeSlave(sim, "memory")
    device.port.bind(link.downstream_if.slave_port)
    link.upstream_if.master_port.bind(memory.port)
    sink = sim.tracer.attach(MemorySink())
    for i in range(8):
        device.write(0x1000 + i * 64, 64)
    sim.run(max_events=3_000_000)
    assert len(memory.requests) == 8

    breakdown = trace_latency_breakdown(sink.events)
    recon = reconcile_trace_with_link(breakdown, link)
    for interface, counts in recon.items():
        for stat_name, pair in counts.items():
            assert pair["stat"] == pair["trace"], (interface, stat_name)


def test_format_latency_breakdown_is_one_screen():
    from repro.analysis.report import (
        format_latency_breakdown,
        trace_latency_breakdown,
    )

    text = format_latency_breakdown(trace_latency_breakdown(synthetic_trace()))
    assert "TLP latency breakdown" in text
    assert "replay/recovery : 200 ticks" in text
    assert len(text.splitlines()) <= 10


# ---------------------------------------------------------------------------
# Flow-level helpers (traffic engine reporting).
# ---------------------------------------------------------------------------

def test_engine_residency_summarises_port_queueing():
    from repro.analysis.report import trace_latency_breakdown

    breakdown = trace_latency_breakdown(synthetic_trace())
    residency = breakdown["engine_residency"]
    assert residency == {"rc.up": {"count": 1, "ticks": 50, "max": 50}}


def test_percentile_nearest_rank():
    from repro.analysis.report import percentile

    samples = list(range(1, 101))  # 1..100
    assert percentile(samples, 0.50) == 50
    assert percentile(samples, 0.99) == 99
    assert percentile(samples, 1.0) == 100
    assert percentile([7], 0.999) == 7
    assert percentile([], 0.5) == 0.0


def test_jain_fairness_reexported_from_analysis():
    from repro.analysis import jain_fairness

    assert jain_fairness([2.0, 2.0]) == 1.0


def test_flow_table_renders_per_flow_rows():
    from repro.analysis.report import flow_table, format_table

    results = {
        "flows": {
            "reader1": {"throughput_gbps": 1.0, "share": 0.4,
                        "p50_ns": 1000.0, "p99_ns": 2000.0,
                        "p999_ns": 2500.0},
            "reader0": {"throughput_gbps": 1.5, "share": 0.6,
                        "p50_ns": 900.0, "p99_ns": 1800.0,
                        "p999_ns": 2400.0},
        },
        "fairness_index": 0.96,
        "total_gbps": 2.5,
        "completed": True,
    }
    table = flow_table(results)
    text = format_table(table)
    lines = text.splitlines()
    # Rows are sorted by flow name; latency columns are microseconds.
    assert lines[3].split()[0] == "reader0"
    assert lines[4].split()[0] == "reader1"
    assert "gbps" in lines[1] and "p99_us" in lines[1]
    assert "2.000" in text  # reader1 p99: 2000 ns -> 2.000 us
