"""Unit tests for the reporting helpers."""

from repro.analysis.report import Series, Table, format_table


def test_series_accumulates_points():
    s = Series("phys")
    s.add(64, 3.1)
    s.add(128, 3.2)
    assert s[64] == 3.1
    assert s.xs() == [64, 128]


def test_table_collects_xs_across_series():
    t = Table("Fig 9(a)", "block_MB", "Gbps")
    a = t.new_series("phys")
    b = t.new_series("L150")
    a.add(64, 3.1)
    b.add(128, 2.6)
    assert t.xs() == [64, 128]


def test_format_table_renders_missing_as_dash():
    t = Table("demo", "x", "y")
    a = t.new_series("a")
    a.add(1, 1.0)
    b = t.new_series("b")
    b.add(2, 2.0)
    text = format_table(t, "{:.1f}")
    assert "demo" in text
    lines = text.splitlines()
    assert lines[1].split() == ["x", "a", "b"]
    assert "-" in lines[3]  # series b has no x=1 point
    assert "1.0" in text and "2.0" in text


def test_format_empty_table():
    t = Table("empty", "x", "y")
    t.new_series("a")
    assert "empty" in format_table(t)


def test_link_replay_stats_shape():
    from repro.analysis.report import link_replay_stats
    from repro.pcie.link import PcieLink
    from repro.sim.simobject import Simulator

    link = PcieLink(Simulator(), "l")
    stats = link_replay_stats(link)
    assert stats["tlps_sent"] == 0
    assert stats["replay_fraction"] == 0.0
    assert set(stats) == {
        "tlps_sent", "replays", "timeouts", "replay_fraction", "delivery_refused"
    }
