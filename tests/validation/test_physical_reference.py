"""Unit tests for the physical-machine reference model."""

import pytest

from repro.pcie.timing import PcieGen
from repro.sim import ticks
from repro.validation.physical_reference import PhysicalSetup, phys_dd_series


def test_wire_rate_gen2_x1():
    setup = PhysicalSetup()
    # 64B payload / 84 wire bytes at 4 Gbps effective = 3.05 Gbps.
    assert setup.wire_rate_gbps == pytest.approx(3.05, rel=0.01)


def test_ceiling_below_encoded_maximum():
    setup = PhysicalSetup()
    # The paper: reported bandwidth is lower than the 4 Gbps encoded
    # maximum of the x1 slot.
    assert setup.ceiling_gbps < 4.0
    assert setup.ceiling_gbps > 2.5


def test_device_bandwidth_caps_fast_links():
    setup = PhysicalSetup(width=32, device_bandwidth_gbps=22.4)
    assert setup.ceiling_gbps == pytest.approx(22.4)


def test_throughput_grows_with_block_size():
    series = phys_dd_series([64 << 20, 128 << 20, 256 << 20, 512 << 20])
    values = [series[k] for k in sorted(series)]
    assert values == sorted(values)
    assert values[-1] > values[0]


def test_large_blocks_approach_ceiling():
    setup = PhysicalSetup()
    assert setup.dd_throughput_gbps(512 << 20) == pytest.approx(
        setup.ceiling_gbps, rel=0.01
    )


def test_startup_cost_lowers_small_blocks():
    cheap = PhysicalSetup(startup_cost=0)
    costly = PhysicalSetup(startup_cost=ticks.from_ms(5))
    assert costly.dd_throughput_gbps(1 << 20) < cheap.dd_throughput_gbps(1 << 20)


def test_parameter_validation():
    with pytest.raises(ValueError):
        PhysicalSetup(host_efficiency=0)
    with pytest.raises(ValueError):
        PhysicalSetup().dd_throughput_gbps(0)


def test_gen3_setup_faster():
    gen2 = PhysicalSetup(gen=PcieGen.GEN2)
    gen3 = PhysicalSetup(gen=PcieGen.GEN3)
    assert gen3.ceiling_gbps > gen2.ceiling_gbps * 1.9
