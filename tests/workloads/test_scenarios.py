"""Scenario library: serialisation, determinism, and invariant checks.

The acceptance battery of the traffic engine: every library scenario
round-trips through JSON, runs checker-armed to completion with zero
protocol-invariant violations, and reproduces byte-identical stats and
traces from the same seeds.
"""

import json

import pytest

from repro.obs.trace import MemorySink
from repro.workloads.scenarios import (SCENARIOS, Scenario, main,
                                       run_scenario)
from repro.workloads.traffic import TrafficError

#: Library builders at sizes small enough for the unit-test budget but
#: still past every interesting threshold (the irq storm deliberately
#: exceeds the IOCache's 16 MSHRs).
SMALL = {
    "fanout_contention": dict(requests=2),
    "mixed_rw": dict(requests=2),
    "irq_storm": dict(requests=2, storm_interrupts=20),
    "nic_loopback": dict(frames=2),
    "accel_fanout": dict(copies=2),
    # Unpinned on purpose: the writers must run at the disk-default 64
    # outstanding DMA packets — the config that used to livelock under
    # the single shared buffer pool (retired known deviation #4).
    "np_storm": dict(requests=2),
}


def small_scenario(name):
    return SCENARIOS[name](**SMALL[name])


# ---------------------------------------------------------------------------
# Pure-data layer.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_json_roundtrip_is_exact(name):
    scenario = SCENARIOS[name]()
    clone = Scenario.from_json(scenario.to_json())
    assert clone.canonical() == scenario.canonical()
    assert clone.digest() == scenario.digest()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_digest_is_stable_across_builds(name):
    assert SCENARIOS[name]().digest() == SCENARIOS[name]().digest()


def test_scenario_rejects_incomplete_documents():
    with pytest.raises(TrafficError, match="requires"):
        Scenario.from_dict({"name": "x", "flows": []})
    with pytest.raises(TrafficError, match="no flows"):
        scenario = SCENARIOS["mixed_rw"]()
        Scenario("x", scenario.topology, [])


def test_builder_parameters_change_the_digest():
    assert SCENARIOS["fanout_contention"]().digest() != \
        SCENARIOS["fanout_contention"](uplink_width=2).digest()


# ---------------------------------------------------------------------------
# Checker-armed runs: the whole library, zero violations.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_library_scenario_completes_checked_with_zero_violations(name):
    system, engine = run_scenario(small_scenario(name), check=True)
    assert engine.completed, f"{name} did not complete"
    violations = system.sim.checker.violations
    assert not violations, \
        f"{name} violated: {sorted({v.rule for v in violations})}"
    results = engine.results()
    for flow, record in results["flows"].items():
        assert record["requests_completed"] == record["requests_issued"], flow


# ---------------------------------------------------------------------------
# Determinism: same scenario, same seeds -> byte-identical everything.
# ---------------------------------------------------------------------------

def run_with_trace(name):
    sink = MemorySink()
    system, engine = run_scenario(small_scenario(name), sink=sink)
    assert engine.completed
    stats = json.dumps(system.sim.dump_stats(), sort_keys=True)
    results = json.dumps(engine.results(), sort_keys=True)
    return stats, results, sink.to_jsonl(meta={"scenario": name})


@pytest.mark.parametrize("name", ("fanout_contention", "irq_storm"))
def test_repeated_runs_are_byte_identical(name):
    first = run_with_trace(name)
    second = run_with_trace(name)
    assert first[0] == second[0], "stats diverged"
    assert first[1] == second[1], "results diverged"
    assert first[2] == second[2], "traces diverged"


def test_seed_changes_move_the_jittered_timing():
    base = SCENARIOS["irq_storm"](requests=2, storm_interrupts=8, seed=1)
    moved = SCENARIOS["irq_storm"](requests=2, storm_interrupts=8, seed=99)
    __, engine_a = run_scenario(base)
    __, engine_b = run_scenario(moved)
    a = engine_a.results()["flows"]["storm"]["elapsed_ticks"]
    b = engine_b.results()["flows"]["storm"]["elapsed_ticks"]
    assert a != b  # the storm's jittered gaps are drawn from the seed


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------

def test_cli_list_names_every_scenario(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out


def test_cli_runs_one_scenario_checked(capsys):
    assert main(["mixed_rw", "--check"]) == 0
    out = capsys.readouterr().out
    assert "mixed_rw" in out
    assert "violations = 0" in out


def test_cli_rejects_unknown_scenario(capsys):
    with pytest.raises(SystemExit):
        main(["no_such_scenario"])
    assert "unknown scenarios" in capsys.readouterr().err
