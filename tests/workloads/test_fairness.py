"""Contention/fairness acceptance battery.

The headline claims of the traffic engine, asserted as tests: equal
flows behind a shared Gen 2 x1 uplink split the bandwidth fairly
(Jain's index >= 0.98, shares ~1/n), and widening the contended uplink
strictly reduces every flow's tail latency.
"""

import pytest

from repro.workloads.scenarios import fanout_contention, run_scenario

#: Request count for the battery: enough work that steady-state
#: contention dominates startup skew, small enough for the test budget.
REQUESTS = 4


def contention_results(uplink_width, fanout=4):
    system, engine = run_scenario(
        fanout_contention(fanout=fanout, uplink_width=uplink_width,
                          requests=REQUESTS))
    assert engine.completed
    return engine.results()


@pytest.fixture(scope="module")
def width_sweep():
    """fanout_contention at the three uplink widths, run once."""
    return {w: contention_results(w) for w in (1, 2, 4)}


def test_equal_flows_share_the_uplink_fairly(width_sweep):
    results = width_sweep[1]
    assert results["fairness_index"] >= 0.98
    for record in results["flows"].values():
        assert record["share"] == pytest.approx(0.25, abs=0.05)


def test_fairness_holds_at_every_width(width_sweep):
    for width, results in width_sweep.items():
        assert results["fairness_index"] >= 0.98, f"x{width}"


def test_wider_uplink_strictly_reduces_p99(width_sweep):
    worst = {w: max(f["p99_ns"] for f in r["flows"].values())
             for w, r in width_sweep.items()}
    assert worst[1] > worst[2] > worst[4]


def test_wider_uplink_raises_total_throughput(width_sweep):
    assert width_sweep[4]["total_gbps"] > width_sweep[1]["total_gbps"]


def test_unequal_demand_lowers_the_index():
    # One reader moving 4x the bytes per request skews the allocation;
    # the index must drop below the equal-flow regime but stay above
    # 1/n (nobody fully starves).
    scenario = fanout_contention(requests=REQUESTS)
    scenario.flows[0].bytes_per_request *= 4
    system, engine = run_scenario(scenario)
    assert engine.completed
    results = engine.results()
    assert 0.25 < results["fairness_index"] < 0.98
