"""Unit tests for the dd workload model."""

import pytest

from repro.sim import ticks
from repro.system.topology import build_validation_system
from repro.workloads.dd import DdResult, DdWorkload


def test_result_throughput_arithmetic():
    result = DdResult(nbytes=1 << 20, elapsed_ticks=ticks.from_ms(1),
                      transfer_ticks=ticks.from_us(800))
    # 1 MiB in 1 ms = 8.39 Gbps.
    assert result.throughput_gbps == pytest.approx(8.388, rel=1e-3)
    assert result.transfer_gbps > result.throughput_gbps
    assert "MB" in repr(result)


def test_block_size_must_align_to_sectors():
    system = build_validation_system()
    with pytest.raises(ValueError):
        DdWorkload(system.kernel, system.disk_driver, block_size=1000)


def test_startup_overhead_included_in_report():
    system = build_validation_system()
    dd = DdWorkload(system.kernel, system.disk_driver, 16 * 1024,
                    startup_overhead=ticks.from_ms(1))
    proc = system.kernel.spawn("dd", dd.run())
    system.run(max_events=10_000_000)
    assert proc.done
    assert dd.result.elapsed_ticks >= ticks.from_ms(1)
    assert dd.result.transfer_ticks < dd.result.elapsed_ticks
    assert dd.result.throughput_gbps < dd.result.transfer_gbps


def test_multi_block_count():
    system = build_validation_system()
    dd = DdWorkload(system.kernel, system.disk_driver, 8 * 1024, count=3,
                    startup_overhead=0)
    proc = system.kernel.spawn("dd", dd.run())
    system.run(max_events=10_000_000)
    assert proc.done
    assert dd.result.nbytes == 3 * 8 * 1024
    assert system.disk.sectors_transferred.value() == 6


def test_throughput_grows_with_block_size_under_fixed_startup():
    values = {}
    for block in (16 * 1024, 128 * 1024):
        system = build_validation_system()
        dd = DdWorkload(system.kernel, system.disk_driver, block,
                        startup_overhead=ticks.from_us(200))
        system.kernel.spawn("dd", dd.run())
        system.run(max_events=20_000_000)
        values[block] = dd.result.throughput_gbps
    assert values[128 * 1024] > values[16 * 1024]
