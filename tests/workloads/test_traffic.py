"""Unit tests for the multi-flow traffic engine.

Covers the pure-data layer (FlowSpec validation and serialisation),
engine binding errors (missing devices, capability mismatches,
exclusive ownership), per-kind request conservation, and the stats
tree contract (``traffic.<flow>.*``).
"""

import pytest

from repro.sim import ticks
from repro.sim.simobject import Simulator
from repro.system.spec import DeviceSpec, LinkSpec, SwitchSpec, TopologySpec
from repro.system.topology import build_system
from repro.workloads.traffic import (FLOW_KINDS, FlowSpec, TrafficEngine,
                                     TrafficError, jain_fairness)


def small_spec(*device_specs):
    """A root with the given devices behind one x2 switch uplink."""
    return TopologySpec(children=[
        SwitchSpec(name="switch",
                   link=LinkSpec(name="uplink", gen="GEN2", width=2),
                   children=list(device_specs)),
    ]).finalize()


def disk_spec(name):
    return DeviceSpec("disk", name=name,
                      link=LinkSpec(name=name, gen="GEN2", width=1))


def run_engine(system, flows, max_events=50_000_000):
    engine = TrafficEngine(system, flows)
    engine.start()
    system.run(max_events=max_events)
    assert engine.completed
    return engine


# ---------------------------------------------------------------------------
# FlowSpec: validation and serialisation.
# ---------------------------------------------------------------------------

def test_flowspec_roundtrip_is_exact():
    spec = FlowSpec(name="f", kind="dd_read", device="disk0", requests=3,
                    bytes_per_request=8192, gap=100, jitter=0.25, burst=2,
                    seed=7, start_delay=50)
    doc = spec.to_dict()
    assert set(doc) == set(FlowSpec.FIELDS)
    assert FlowSpec.from_dict(doc).to_dict() == doc


@pytest.mark.parametrize("bad", [
    dict(name=""),
    dict(kind="warp_drive"),
    dict(device=""),
    dict(requests=0),
    dict(bytes_per_request=0),
    dict(gap=-1),
    dict(jitter=1.5),
    dict(burst=0),
    dict(loopback=True),  # only valid for nic_tx
])
def test_flowspec_validation_rejects(bad):
    base = dict(name="f", kind="dd_read", device="d")
    base.update(bad)
    with pytest.raises(TrafficError):
        FlowSpec(**base).validate()


def test_flowspec_from_dict_rejects_unknown_and_incomplete():
    with pytest.raises(TrafficError, match="unknown"):
        FlowSpec.from_dict({"name": "f", "kind": "dd_read", "device": "d",
                            "bogus": 1})
    with pytest.raises(TrafficError, match="requires"):
        FlowSpec.from_dict({"name": "f", "kind": "dd_read"})


def test_every_flow_kind_is_validatable():
    for kind in FLOW_KINDS:
        FlowSpec(name="f", kind=kind, device="d").validate()


# ---------------------------------------------------------------------------
# Engine binding errors: a bad scenario fails before any event runs.
# ---------------------------------------------------------------------------

def test_engine_rejects_empty_and_duplicate_flows():
    system = build_system(small_spec(disk_spec("disk0")))
    with pytest.raises(TrafficError, match="at least one"):
        TrafficEngine(system, [])
    flows = [FlowSpec(name="f", kind="dd_read", device="disk0"),
             FlowSpec(name="f", kind="mmio_read", device="disk0")]
    with pytest.raises(TrafficError, match="duplicate"):
        TrafficEngine(system, flows)


def test_engine_rejects_unknown_device_and_names_alternatives():
    system = build_system(small_spec(disk_spec("disk0")))
    with pytest.raises(TrafficError, match="disk0"):
        TrafficEngine(system, [FlowSpec(name="f", kind="dd_read",
                                        device="nope")])


def test_engine_rejects_kind_capability_mismatch():
    system = build_system(small_spec(disk_spec("disk0")))
    with pytest.raises(TrafficError, match="wrong device kind"):
        TrafficEngine(system, [FlowSpec(name="f", kind="nic_tx",
                                        device="disk0")])


def test_engine_enforces_exclusive_device_ownership():
    system = build_system(small_spec(disk_spec("disk0")))
    flows = [FlowSpec(name="a", kind="dd_read", device="disk0", requests=1),
             FlowSpec(name="b", kind="dd_write", device="disk0", requests=1)]
    with pytest.raises(TrafficError, match="exclusive"):
        TrafficEngine(system, flows)


def test_mmio_probe_may_share_an_owned_device():
    system = build_system(small_spec(disk_spec("disk0")))
    engine = run_engine(system, [
        FlowSpec(name="reader", kind="dd_read", device="disk0", requests=1),
        FlowSpec(name="probe", kind="mmio_read", device="disk0", requests=2),
    ])
    results = engine.results()
    assert results["flows"]["probe"]["requests_completed"] == 2


def test_engine_cannot_start_twice():
    system = build_system(small_spec(disk_spec("disk0")))
    engine = TrafficEngine(system, [
        FlowSpec(name="f", kind="dd_read", device="disk0", requests=1)])
    engine.start()
    with pytest.raises(TrafficError, match="already started"):
        engine.start()


# ---------------------------------------------------------------------------
# Conservation: every issued request completes, bytes match the spec.
# ---------------------------------------------------------------------------

def test_dd_flows_conserve_requests_and_bytes():
    system = build_system(small_spec(disk_spec("disk0"), disk_spec("disk1")))
    requests, bpr = 3, 8192
    engine = run_engine(system, [
        FlowSpec(name="r", kind="dd_read", device="disk0",
                 requests=requests, bytes_per_request=bpr),
        FlowSpec(name="w", kind="dd_write", device="disk1",
                 requests=requests, bytes_per_request=bpr),
    ])
    results = engine.results()
    for name in ("r", "w"):
        record = results["flows"][name]
        assert record["requests_issued"] == requests
        assert record["requests_completed"] == requests
        assert record["bytes"] == requests * bpr
        assert record["throughput_gbps"] > 0
    # The disks saw exactly the flow's sectors — nothing lost, nothing
    # duplicated.
    sector = system.drivers["disk0"].sector_size
    for disk_name in ("disk0", "disk1"):
        disk = system.devices[disk_name]
        assert disk.sectors_transferred.value() == requests * bpr // sector


def test_flow_stats_land_in_the_stats_tree():
    system = build_system(small_spec(disk_spec("disk0")))
    run_engine(system, [FlowSpec(name="reader", kind="dd_read",
                                 device="disk0", requests=2)])
    dump = system.sim.dump_stats()
    assert dump["traffic.reader.requests_issued"] == 2
    assert dump["traffic.reader.requests_completed"] == 2
    assert dump["traffic.reader.bytes_moved"] == 2 * 4096
    assert dump["traffic.reader.request_ticks::count"] == 2
    assert dump["traffic.reader.request_ticks::p99"] >= \
        dump["traffic.reader.request_ticks::p50"] > 0


def test_gap_and_start_delay_shape_the_flow():
    # A gapped flow finishes strictly later than a saturating one with
    # the same request count, and start_delay offsets the first issue.
    def elapsed(gap, start_delay):
        system = build_system(small_spec(disk_spec("disk0")))
        engine = TrafficEngine(system, [
            FlowSpec(name="f", kind="dd_read", device="disk0", requests=3,
                     gap=gap, start_delay=start_delay)])
        engine.start()
        system.run(max_events=50_000_000)
        assert engine.completed
        state = engine._states["f"]
        return state.first_issue_tick, state.last_complete_tick

    first_a, last_a = elapsed(0, 0)
    first_b, last_b = elapsed(ticks.from_us(50), 0)
    first_c, __ = elapsed(0, ticks.from_us(10))
    assert last_b - first_b > last_a - first_a
    assert first_c >= first_a + ticks.from_us(10)


def test_jitter_draws_are_deterministic_per_seed():
    def run(seed):
        system = build_system(small_spec(disk_spec("disk0")))
        engine = run_engine(system, [
            FlowSpec(name="f", kind="dd_read", device="disk0", requests=4,
                     gap=ticks.from_us(20), jitter=0.5, seed=seed)])
        return engine.results()["flows"]["f"]

    assert run(3) == run(3)
    # A different seed draws different gaps, so the timing moves.
    assert run(3)["elapsed_ticks"] != run(4)["elapsed_ticks"]


# ---------------------------------------------------------------------------
# Interrupt-storm flows: every raised MSI is delivered (the IOCache
# posted-write regression of the irq_storm scenario).
# ---------------------------------------------------------------------------

def test_irq_storm_delivers_every_msi_past_the_iocache():
    # More interrupts than the IOCache has MSHRs: a posted MSI write
    # leaking an MSHR wedges the fabric after 16 of these.
    topology = TopologySpec(enable_msi=True, children=[
        SwitchSpec(name="switch",
                   link=LinkSpec(name="uplink", gen="GEN2", width=2),
                   children=[
                       DeviceSpec("nic", name="nic0",
                                  link=LinkSpec(name="nic0", gen="GEN2",
                                                width=1)),
                   ]),
    ]).finalize()
    system = build_system(topology)
    n = 24
    engine = run_engine(system, [
        FlowSpec(name="storm", kind="irq_storm", device="nic0", requests=n,
                 gap=ticks.from_us(2))])
    results = engine.results()
    assert results["flows"]["storm"]["requests_completed"] == n
    assert results["flows"]["storm"]["bytes"] == 0


# ---------------------------------------------------------------------------
# Jain's fairness index arithmetic.
# ---------------------------------------------------------------------------

def test_jain_fairness_arithmetic():
    assert jain_fairness([]) == 0.0
    assert jain_fairness([0.0, 0.0]) == 0.0
    assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)
    assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    assert 0.25 < jain_fairness([4.0, 1.0, 1.0, 1.0]) < 1.0
