"""Unit tests for the MMIO-latency microbenchmark."""

import pytest

from repro.sim import ticks
from repro.system.topology import build_nic_system
from repro.workloads.mmio import MmioReadBench


def test_validates_iterations():
    system = build_nic_system()
    with pytest.raises(ValueError):
        MmioReadBench(system.kernel, 0x40000000, iterations=0)


def test_measures_each_iteration():
    system = build_nic_system()
    bench = MmioReadBench(system.kernel, system.nic_driver.bar0 + 0x8,
                          iterations=10)
    assert bench.mean_latency_ns is None
    proc = system.kernel.spawn("bench", bench.run())
    system.run()
    assert proc.done
    assert len(bench.latencies_ticks) == 10
    assert bench.mean_latency_ns > 0


def test_steady_state_latency_is_stable():
    system = build_nic_system()
    bench = MmioReadBench(system.kernel, system.nic_driver.bar0 + 0x8,
                          iterations=10)
    system.kernel.spawn("bench", bench.run())
    system.run()
    tail = bench.latencies_ticks[2:]
    assert max(tail) == min(tail)  # dependent reads on an idle fabric


def test_latency_includes_rc_both_ways():
    fast = build_nic_system(rc_latency=ticks.from_ns(50))
    bench = MmioReadBench(fast.kernel, fast.nic_driver.bar0 + 0x8, iterations=5)
    fast.kernel.spawn("bench", bench.run())
    fast.run()
    # Two RC crossings alone are 100 ns; the link, crossbar and device
    # add the rest — the paper's Table II smallest value is 318 ns.
    assert bench.mean_latency_ns > 150
