"""Unit tests for the raw configuration space."""

import pytest

from repro.pci.config import ConfigSpace, PCI_CONFIG_SIZE, PCIE_CONFIG_SIZE


def test_sizes():
    assert ConfigSpace(PCI_CONFIG_SIZE).size == 256
    assert ConfigSpace().size == 4096
    with pytest.raises(ValueError):
        ConfigSpace(128)


def test_reads_little_endian():
    cfg = ConfigSpace()
    cfg.init_field(0x00, 4, 0x12345678)
    assert cfg.read(0x00, 4) == 0x12345678
    assert cfg.read(0x00, 2) == 0x5678
    assert cfg.read(0x02, 2) == 0x1234
    assert cfg.read(0x03, 1) == 0x12


def test_write_respects_mask():
    cfg = ConfigSpace()
    cfg.init_field(0x04, 2, 0x0000, writable_mask=0x0007)
    cfg.write(0x04, 0xFFFF, 2)
    assert cfg.read(0x04, 2) == 0x0007


def test_readonly_field_ignores_writes():
    cfg = ConfigSpace()
    cfg.init_field(0x00, 2, 0x8086)
    cfg.write(0x00, 0x0000, 2)
    assert cfg.read(0x00, 2) == 0x8086


def test_set_raw_bypasses_mask():
    cfg = ConfigSpace()
    cfg.init_field(0x06, 2, 0x0000, writable_mask=0x0000)
    cfg.set_raw(0x06, 2, 0x0010)
    assert cfg.read(0x06, 2) == 0x0010


def test_bounds_checked():
    cfg = ConfigSpace()
    with pytest.raises(ValueError):
        cfg.read(4094, 4)
    with pytest.raises(ValueError):
        cfg.read(0, 9)
    with pytest.raises(ValueError):
        cfg.read(0, 0)
    with pytest.raises(ValueError):
        cfg.write(-1, 0, 1)


def test_write_hooks_fire_on_overlap():
    cfg = ConfigSpace()
    cfg.init_field(0x10, 4, 0, writable_mask=0xFFFFFFFF)
    hits = []
    cfg.add_write_hook(0x10, 4, lambda off, sz, val: hits.append((off, sz, val)))
    cfg.write(0x10, 0xCAFEBABE, 4)
    assert hits == [(0x10, 4, 0xCAFEBABE)]
    cfg.write(0x12, 0xAA, 1)  # partial overlap still triggers
    assert len(hits) == 2
    cfg.write(0x20, 0x1, 4)  # outside: no trigger
    assert len(hits) == 2


def test_hexdump_format():
    cfg = ConfigSpace()
    cfg.init_field(0x00, 2, 0x8086)
    dump = cfg.hexdump(16)
    assert dump.startswith("000: 86 80")
