"""Unit tests for the enumeration software.

The scenarios mirror the paper's topologies: endpoints directly on root
ports, and a switch (bridge-of-bridges) with endpoints behind it.
"""

import pytest

from repro.mem.addr import AddrRange, disjoint
from repro.pci import header as hdr
from repro.pci.capabilities import (
    CAP_ID_PCIE,
    PcieCapability,
    PciePortType,
)
from repro.pci.enumeration import EnumerationError, Enumerator
from repro.pci.header import Bar, PciBridgeFunction, PciEndpointFunction
from repro.pci.host import PciHost
from repro.sim.simobject import Simulator


def make_host():
    return PciHost(Simulator())


def nic_function():
    fn = PciEndpointFunction(
        0x8086, 0x10D3, bars=[Bar(128 * 1024), Bar(4096), Bar(32, io=True)]
    )
    fn.add_capability(PcieCapability(PciePortType.ENDPOINT))
    return fn


def disk_function():
    return PciEndpointFunction(
        0x8086, 0x7111, bars=[Bar(16, io=True), Bar(16, io=True), Bar(4096)]
    )


def root_port_bridge():
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    bridge.add_capability(PcieCapability(PciePortType.ROOT_PORT), offset=0xD8)
    return bridge


def test_single_endpoint_on_bus0():
    host = make_host()
    host.root_bus.add_function(1, 0, nic_function())
    enumerator = Enumerator(host)
    roots = enumerator.enumerate()
    assert len(roots) == 1
    node = roots[0]
    assert not node.is_bridge
    assert node.device_id == 0x10D3
    assert len(node.bars) == 3
    sizes = {bar.index: bar.size for bar in node.bars}
    assert sizes == {0: 128 * 1024, 1: 4096, 2: 32}


def test_bar_assignment_aligned_and_disjoint():
    host = make_host()
    host.root_bus.add_function(1, 0, nic_function())
    enumerator = Enumerator(host)
    (node,) = enumerator.enumerate()
    ranges = [bar.assigned for bar in node.bars]
    assert all(rng is not None for rng in ranges)
    assert disjoint(ranges)
    for bar in node.bars:
        assert bar.assigned.start % bar.size == 0
        window = enumerator.io_alloc.window if bar.io else enumerator.mem_alloc.window
        assert window.contains_range(bar.assigned)


def test_device_enabled_for_decode_and_dma():
    host = make_host()
    fn = nic_function()
    host.root_bus.add_function(1, 0, fn)
    Enumerator(host).enumerate()
    assert fn.memory_enabled
    assert fn.io_enabled
    assert fn.bus_master_enabled


def test_interrupt_lines_assigned_uniquely():
    host = make_host()
    a, b = nic_function(), disk_function()
    host.root_bus.add_function(1, 0, a)
    host.root_bus.add_function(2, 0, b)
    enumerator = Enumerator(host, irq_base=32)
    enumerator.enumerate()
    assert a.interrupt_line != b.interrupt_line
    assert a.interrupt_line >= 32


def test_bridge_gets_bus_numbers_and_windows():
    host = make_host()
    bridge = root_port_bridge()
    child = host.root_bus.add_bridge(0, 0, bridge)
    nic = nic_function()
    child.add_function(0, 0, nic)
    enumerator = Enumerator(host)
    (node,) = enumerator.enumerate()
    assert node.is_bridge
    assert node.secondary_bus == 1
    assert node.subordinate_bus == 1
    assert bridge.secondary_bus == 1
    # Windows cover the child's BARs.
    for bar in node.children[0].bars:
        window = bridge.io_window if bar.io else bridge.memory_window
        assert window is not None
        assert window.contains_range(bar.assigned)
    assert bridge.memory_enabled and bridge.io_enabled and bridge.bus_master_enabled


def test_switch_topology_depth_first_numbering():
    """Root port -> switch upstream -> two downstream ports -> endpoints.

    Depth-first numbering: root port sec=1, upstream sec=2, first
    downstream sec=3, second downstream sec=4; subordinates clamp to the
    deepest bus below each bridge.
    """
    host = make_host()
    root_port = root_port_bridge()
    bus1 = host.root_bus.add_bridge(0, 0, root_port)
    upstream = PciBridgeFunction(0x104C, 0x8232)
    upstream.add_capability(PcieCapability(PciePortType.UPSTREAM_SWITCH_PORT), offset=0xD8)
    bus2 = bus1.add_bridge(0, 0, upstream)
    down_a = PciBridgeFunction(0x104C, 0x8233)
    down_a.add_capability(PcieCapability(PciePortType.DOWNSTREAM_SWITCH_PORT), offset=0xD8)
    bus3 = bus2.add_bridge(0, 0, down_a)
    down_b = PciBridgeFunction(0x104C, 0x8233)
    down_b.add_capability(PcieCapability(PciePortType.DOWNSTREAM_SWITCH_PORT), offset=0xD8)
    bus4 = bus2.add_bridge(1, 0, down_b)
    nic = nic_function()
    disk = disk_function()
    bus3.add_function(0, 0, nic)
    bus4.add_function(0, 0, disk)

    enumerator = Enumerator(host)
    (root,) = enumerator.enumerate()
    assert root.secondary_bus == 1 and root.subordinate_bus == 4
    up = root.children[0]
    assert up.secondary_bus == 2 and up.subordinate_bus == 4
    da, db = up.children
    assert da.secondary_bus == 3 and da.subordinate_bus == 3
    assert db.secondary_bus == 4 and db.subordinate_bus == 4

    # Window nesting: each parent window contains each child window.
    assert root_port.memory_window.contains_range(upstream.memory_window)
    assert upstream.memory_window.contains_range(down_a.memory_window)
    assert upstream.memory_window.contains_range(down_b.memory_window)
    # Sibling windows must not overlap.
    assert not down_a.memory_window.overlaps(down_b.memory_window)

    # Every endpoint BAR is reachable through the whole bridge chain.
    for node in (da.children[0], db.children[0]):
        for bar in node.bars:
            for bridge in (root_port, upstream):
                assert any(
                    w.contains_range(bar.assigned) for w in bridge.forwarding_ranges()
                )


def test_bridge_without_children_gets_closed_windows():
    host = make_host()
    bridge = root_port_bridge()
    host.root_bus.add_bridge(0, 0, bridge)
    Enumerator(host).enumerate()
    assert bridge.memory_window is None
    assert bridge.io_window is None


def test_find_by_vendor_device():
    host = make_host()
    host.root_bus.add_function(1, 0, nic_function())
    enumerator = Enumerator(host)
    enumerator.enumerate()
    assert len(enumerator.find(0x8086, 0x10D3)) == 1
    assert enumerator.find(0x1234, 0x5678) == []


def test_capabilities_discovered():
    host = make_host()
    host.root_bus.add_function(1, 0, nic_function())
    enumerator = Enumerator(host)
    (node,) = enumerator.enumerate()
    assert CAP_ID_PCIE in [cap_id for cap_id, __ in node.capabilities]


def test_mem_space_exhaustion_raises():
    host = make_host()
    host.root_bus.add_function(1, 0, PciEndpointFunction(1, 1, bars=[Bar(1 << 20)]))
    enumerator = Enumerator(host, mem_window=AddrRange(0x40000000, 0x1000))
    with pytest.raises(EnumerationError):
        enumerator.enumerate()


def test_tree_text_renders():
    host = make_host()
    bridge = root_port_bridge()
    child = host.root_bus.add_bridge(0, 0, bridge)
    child.add_function(0, 0, nic_function())
    enumerator = Enumerator(host)
    enumerator.enumerate()
    text = enumerator.tree_text()
    assert "bridge 8086:9c90" in text
    assert "endpoint 8086:10d3" in text
    assert "sec=1" in text
