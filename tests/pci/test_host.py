"""Unit tests for the PCI host and structural config routing."""

import pytest

from repro.mem.packet import MemCmd, Packet
from repro.pci import header as hdr
from repro.pci.header import Bar, PciBridgeFunction, PciEndpointFunction
from repro.pci.host import PciHost
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster


def test_ecam_encode_decode_round_trip():
    sim = Simulator()
    host = PciHost(sim)
    addr = host.encode(3, 17, 2, 0x44)
    assert host.decode(addr) == (3, 17, 2, 0x44)
    assert host.ecam_range.contains(addr)


def test_absent_device_reads_all_ones():
    sim = Simulator()
    host = PciHost(sim)
    assert host.config_read(0, 5, 0, hdr.VENDOR_ID, 2) == 0xFFFF
    assert host.config_read(9, 0, 0, hdr.VENDOR_ID, 4) == 0xFFFFFFFF
    assert host.missed_accesses.value() == 2


def test_write_to_absent_device_dropped():
    sim = Simulator()
    host = PciHost(sim)
    host.config_write(0, 5, 0, hdr.COMMAND, 0x7, 2)  # must not raise
    assert host.missed_accesses.value() == 1


def test_bus0_device_reachable():
    sim = Simulator()
    host = PciHost(sim)
    fn = PciEndpointFunction(0x8086, 0x10D3)
    host.root_bus.add_function(2, 0, fn)
    assert host.config_read(0, 2, 0, hdr.VENDOR_ID, 2) == 0x8086
    host.config_write(0, 2, 0, hdr.COMMAND, hdr.CMD_MEM_SPACE, 2)
    assert fn.memory_enabled


def test_duplicate_slot_rejected():
    sim = Simulator()
    host = PciHost(sim)
    host.root_bus.add_function(0, 0, PciEndpointFunction(1, 1))
    with pytest.raises(ValueError):
        host.root_bus.add_function(0, 0, PciEndpointFunction(2, 2))


def test_device_behind_unconfigured_bridge_unreachable():
    sim = Simulator()
    host = PciHost(sim)
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    child = host.root_bus.add_bridge(0, 0, bridge)
    child.add_function(0, 0, PciEndpointFunction(0x8086, 0x10D3))
    # Bridge still has secondary == 0: bus 1 resolves nowhere.
    assert host.config_read(1, 0, 0, hdr.VENDOR_ID, 2) == 0xFFFF


def test_config_cycles_route_through_programmed_bridge():
    sim = Simulator()
    host = PciHost(sim)
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    child = host.root_bus.add_bridge(0, 0, bridge)
    nic = PciEndpointFunction(0x8086, 0x10D3)
    child.add_function(0, 0, nic)
    host.config_write(0, 0, 0, hdr.SECONDARY_BUS, 1, 1)
    host.config_write(0, 0, 0, hdr.SUBORDINATE_BUS, 1, 1)
    assert host.config_read(1, 0, 0, hdr.DEVICE_ID, 2) == 0x10D3
    assert host.function_at(1, 0, 0) is nic


def test_nested_bridge_routing():
    sim = Simulator()
    host = PciHost(sim)
    root_port = PciBridgeFunction(0x8086, 0x9C90)
    bus1 = host.root_bus.add_bridge(0, 0, root_port)
    upstream = PciBridgeFunction(0x104C, 0x8232)
    bus2 = host.root_bus.child_behind(0, 0).add_bridge(0, 0, upstream)
    disk = PciEndpointFunction(0x8086, 0x7111)
    bus2.add_function(3, 0, disk)
    # Program bus numbers the way enumeration would.
    host.config_write(0, 0, 0, hdr.SECONDARY_BUS, 1, 1)
    host.config_write(0, 0, 0, hdr.SUBORDINATE_BUS, 2, 1)
    host.config_write(1, 0, 0, hdr.SECONDARY_BUS, 2, 1)
    host.config_write(1, 0, 0, hdr.SUBORDINATE_BUS, 2, 1)
    assert host.config_read(2, 3, 0, hdr.DEVICE_ID, 2) == 0x7111
    assert host.function_at(2, 3, 0) is disk
    # Bus 3 exists nowhere.
    assert host.config_read(3, 0, 0, hdr.VENDOR_ID, 2) == 0xFFFF


def test_add_bridge_type_checked():
    sim = Simulator()
    host = PciHost(sim)
    with pytest.raises(TypeError):
        host.root_bus.add_bridge(0, 0, PciEndpointFunction(1, 1))


def test_all_functions_walks_tree():
    sim = Simulator()
    host = PciHost(sim)
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    child = host.root_bus.add_bridge(0, 0, bridge)
    child.add_function(0, 0, PciEndpointFunction(0x8086, 0x10D3))
    host.root_bus.add_function(1, 0, PciEndpointFunction(0x8086, 0x1234))
    assert len(host.all_functions()) == 3


def test_timed_config_access_via_port():
    sim = Simulator()
    host = PciHost(sim, config_latency=100_000)
    fn = PciEndpointFunction(0x8086, 0x10D3)
    host.root_bus.add_function(2, 0, fn)
    master = FakeMaster(sim)
    master.port.bind(host.port)
    addr = host.encode(0, 2, 0, hdr.VENDOR_ID)
    master._queue.push(Packet(MemCmd.CONFIG_READ_REQ, addr, 2))
    sim.run()
    assert len(master.responses) == 1
    assert master.responses[0].data == (0x8086).to_bytes(2, "little")
    assert master.response_ticks[0] == 100_000


def test_timed_config_write_via_port():
    sim = Simulator()
    host = PciHost(sim)
    fn = PciEndpointFunction(0x8086, 0x10D3)
    host.root_bus.add_function(2, 0, fn)
    master = FakeMaster(sim)
    master.port.bind(host.port)
    addr = host.encode(0, 2, 0, hdr.COMMAND)
    value = (hdr.CMD_MEM_SPACE | hdr.CMD_BUS_MASTER).to_bytes(2, "little")
    master._queue.push(Packet(MemCmd.CONFIG_WRITE_REQ, addr, 2, data=value))
    sim.run()
    assert fn.memory_enabled and fn.bus_master_enabled
    assert master.responses[0].cmd is MemCmd.CONFIG_WRITE_RESP
