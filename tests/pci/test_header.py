"""Unit tests for endpoint and bridge headers."""

import pytest

from repro.mem.addr import AddrRange
from repro.pci import header as hdr
from repro.pci.header import Bar, PciBridgeFunction, PciEndpointFunction


def make_endpoint(**kwargs):
    return PciEndpointFunction(
        vendor_id=0x8086,
        device_id=0x10D3,
        bars=[Bar(128 * 1024), Bar(32, io=True)],
        **kwargs,
    )


def test_identity_registers():
    fn = make_endpoint(class_code=0x020000, revision=3)
    assert fn.vendor_id == 0x8086
    assert fn.device_id == 0x10D3
    assert fn.config_read(hdr.REVISION_ID, 1) == 3
    assert fn.config_read(hdr.CLASS_CODE, 3) == 0x020000
    assert not fn.is_bridge


def test_bar_validation():
    with pytest.raises(ValueError):
        Bar(100)  # not a power of two
    with pytest.raises(ValueError):
        Bar(8)  # below memory minimum
    with pytest.raises(ValueError):
        PciEndpointFunction(0, 0, bars=[Bar(16)] * 7)


def test_bar_size_probe():
    fn = make_endpoint()
    fn.config_write(hdr.BAR0, 0xFFFFFFFF, 4)
    probed = fn.config_read(hdr.BAR0, 4)
    # 128 KiB memory BAR: address bits above bit 16 stick, type bits 0.
    assert probed == 0xFFFE0000
    size = ((~(probed & 0xFFFFFFF0)) & 0xFFFFFFFF) + 1
    assert size == 128 * 1024


def test_io_bar_probe_and_type_bit():
    fn = make_endpoint()
    fn.config_write(hdr.BAR0 + 4, 0xFFFFFFFF, 4)
    probed = fn.config_read(hdr.BAR0 + 4, 4)
    assert probed & 0x1  # I/O space indicator survives
    size = ((~(probed & 0xFFFFFFFC)) & 0xFFFFFFFF) + 1
    assert size == 32


def test_unimplemented_bar_reads_zero():
    fn = make_endpoint()
    fn.config_write(hdr.BAR0 + 8, 0xFFFFFFFF, 4)
    assert fn.config_read(hdr.BAR0 + 8, 4) == 0


def test_bar_assignment_and_ranges():
    fn = make_endpoint()
    fn.config_write(hdr.BAR0, 0x40000000, 4)
    fn.config_write(hdr.BAR0 + 4, 0x2F001000, 4)
    # Decode disabled: no ranges yet.
    assert fn.bar_ranges() == []
    fn.config_write(hdr.COMMAND, hdr.CMD_MEM_SPACE | hdr.CMD_IO_SPACE, 2)
    ranges = fn.bar_ranges()
    assert AddrRange(0x40000000, 128 * 1024) in ranges
    assert AddrRange(0x2F001000, 32) in ranges


def test_bar_address_alignment_enforced_by_mask():
    fn = make_endpoint()
    fn.config_write(hdr.BAR0, 0x40001234, 4)  # misaligned for 128 KiB
    assert fn.bars[0].addr == 0x40000000


def test_command_register_bits():
    fn = make_endpoint()
    assert not fn.memory_enabled
    fn.config_write(hdr.COMMAND, hdr.CMD_MEM_SPACE | hdr.CMD_BUS_MASTER, 2)
    assert fn.memory_enabled
    assert fn.bus_master_enabled
    assert not fn.io_enabled


def test_interrupt_line_writable():
    fn = make_endpoint()
    fn.config_write(hdr.INTERRUPT_LINE, 42, 1)
    assert fn.interrupt_line == 42
    assert fn.config_read(hdr.INTERRUPT_PIN, 1) == 0x01  # INTA#


# --- bridges -------------------------------------------------------------------


def test_bridge_header_type():
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    assert bridge.is_bridge
    assert bridge.config_read(hdr.HEADER_TYPE, 1) == 0x01
    assert bridge.config_read(hdr.CLASS_CODE, 3) == 0x060400


def test_bridge_bus_numbers():
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    bridge.config_write(hdr.PRIMARY_BUS, 0, 1)
    bridge.config_write(hdr.SECONDARY_BUS, 1, 1)
    bridge.config_write(hdr.SUBORDINATE_BUS, 3, 1)
    assert bridge.primary_bus == 0
    assert bridge.secondary_bus == 1
    assert bridge.subordinate_bus == 3
    assert bridge.bus_in_range(1)
    assert bridge.bus_in_range(3)
    assert not bridge.bus_in_range(4)
    assert not bridge.bus_in_range(0)


def test_fresh_bridge_decodes_nothing():
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    assert bridge.memory_window is None
    assert bridge.io_window is None
    assert bridge.forwarding_ranges() == []


def test_memory_window_decode_via_registers():
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    # Software programs a [0x40100000, 0x40300000) window.
    bridge.config_write(hdr.MEMORY_BASE, (0x40100000 >> 16) & 0xFFF0, 2)
    bridge.config_write(hdr.MEMORY_LIMIT, ((0x40300000 - 1) >> 16) & 0xFFF0, 2)
    assert bridge.memory_window == AddrRange(0x40100000, end=0x40300000)
    # Not forwarded until the command register enables memory decode.
    assert bridge.forwarding_ranges() == []
    bridge.config_write(hdr.COMMAND, hdr.CMD_MEM_SPACE, 2)
    assert bridge.forwarding_ranges() == [AddrRange(0x40100000, end=0x40300000)]
    assert bridge.forwards(0x40200000)
    assert not bridge.forwards(0x40300000)


def test_32bit_io_window_uses_upper_registers():
    # The platform's I/O window lives at 0x2F000000, beyond 16 bits —
    # the paper notes both upper registers must be implemented.
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    bridge.config_write(hdr.IO_BASE, ((0x2F000000 >> 8) & 0xF0) | 0x01, 1)
    bridge.config_write(hdr.IO_BASE_UPPER16, 0x2F000000 >> 16, 2)
    bridge.config_write(hdr.IO_LIMIT, ((0x2F001FFF >> 8) & 0xF0) | 0x01, 1)
    bridge.config_write(hdr.IO_LIMIT_UPPER16, 0x2F001FFF >> 16, 2)
    bridge.config_write(hdr.COMMAND, hdr.CMD_IO_SPACE, 2)
    assert bridge.io_window == AddrRange(0x2F000000, 0x2000)


def test_window_helpers_validate_alignment():
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    with pytest.raises(ValueError):
        bridge.set_memory_window(AddrRange(0x40000100, 0x100000))
    with pytest.raises(ValueError):
        bridge.set_io_window(AddrRange(0x2F000010, 0x1000))


def test_bridge_bars_read_zero():
    # Per the paper, VP2Ps implement no BARs of their own.
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    bridge.config_write(hdr.BAR0, 0xFFFFFFFF, 4)
    assert bridge.config_read(hdr.BAR0, 4) == 0
