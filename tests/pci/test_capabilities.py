"""Unit tests for capability structures and chaining."""

import pytest

from repro.pci import header as hdr
from repro.pci.capabilities import (
    CAP_ID_MSI,
    CAP_ID_MSIX,
    CAP_ID_PCIE,
    CAP_ID_POWER_MANAGEMENT,
    MsiCapability,
    MsixCapability,
    PcieCapability,
    PciePortType,
    PowerManagementCapability,
)
from repro.pci.header import PciEndpointFunction


def nic_like_function():
    """The paper's 8254x-pcie chain: PM -> MSI -> PCIe -> MSI-X."""
    fn = PciEndpointFunction(0x8086, 0x10D3)
    fn.add_capability(PowerManagementCapability())
    fn.add_capability(MsiCapability())
    fn.add_capability(PcieCapability(PciePortType.ENDPOINT, max_link_speed=2,
                                     max_link_width=1))
    fn.add_capability(MsixCapability(table_size=5))
    return fn


def test_status_bit_set_when_capabilities_present():
    fn = PciEndpointFunction(0x8086, 0x10D3)
    assert not fn.config_read(hdr.STATUS, 2) & hdr.STATUS_CAP_LIST
    fn.add_capability(PowerManagementCapability())
    assert fn.config_read(hdr.STATUS, 2) & hdr.STATUS_CAP_LIST


def test_chain_order_matches_paper():
    fn = nic_like_function()
    ids = [cap_id for cap_id, __ in fn.walk_capabilities()]
    assert ids == [CAP_ID_POWER_MANAGEMENT, CAP_ID_MSI, CAP_ID_PCIE, CAP_ID_MSIX]


def test_chain_terminates():
    fn = nic_like_function()
    last_id, last_offset = fn.walk_capabilities()[-1]
    assert fn.config_read(last_offset + 1, 1) == 0


def test_find_capability():
    fn = nic_like_function()
    assert fn.find_capability(CAP_ID_PCIE) is not None
    assert fn.find_capability(0x7F) is None


def test_explicit_offset_honoured():
    # The paper places the VP2P PCIe capability at 0xD8.
    fn = PciEndpointFunction(0x8086, 0x9C90)
    offset = fn.add_capability(PcieCapability(PciePortType.ROOT_PORT), offset=0xD8)
    assert offset == 0xD8
    assert fn.config_read(hdr.CAPABILITY_POINTER, 1) == 0xD8


def test_offset_must_be_aligned_and_fit():
    fn = PciEndpointFunction(0x8086, 0x10D3)
    with pytest.raises(ValueError):
        fn.add_capability(PcieCapability(), offset=0x41)
    with pytest.raises(ValueError):
        fn.add_capability(PcieCapability(), offset=0xF0)  # overflows 0x100


def test_msi_enable_is_read_only_zero():
    # This is what forces the e1000e driver to register a legacy handler.
    fn = nic_like_function()
    offset = fn.find_capability(CAP_ID_MSI)
    fn.config_write(offset + 2, 0x0001, 2)  # try to enable MSI
    assert fn.config_read(offset + 2, 2) & 0x1 == 0


def test_msix_enable_is_read_only_zero():
    fn = nic_like_function()
    offset = fn.find_capability(CAP_ID_MSIX)
    fn.config_write(offset + 2, 0x8000, 2)
    assert fn.config_read(offset + 2, 2) & 0x8000 == 0
    assert (fn.config_read(offset + 2, 2) & 0x7FF) + 1 == 5  # table size


def test_pm_stuck_at_d0():
    fn = nic_like_function()
    offset = fn.find_capability(CAP_ID_POWER_MANAGEMENT)
    fn.config_write(offset + 4, 0x0003, 2)  # try to enter D3
    assert fn.config_read(offset + 4, 2) & 0x3 == 0


def test_pcie_capability_port_type_and_link():
    fn = PciEndpointFunction(0x8086, 0x9C90)
    offset = fn.add_capability(
        PcieCapability(PciePortType.ROOT_PORT, max_link_speed=2, max_link_width=4)
    )
    caps_reg = fn.config_read(offset + 2, 2)
    assert (caps_reg >> 4) & 0xF == PciePortType.ROOT_PORT
    link_caps = fn.config_read(offset + 0x0C, 4)
    assert link_caps & 0xF == 2  # 5 GT/s
    assert (link_caps >> 4) & 0x3F == 4  # x4
    link_status = fn.config_read(offset + 0x12, 2)
    assert link_status & 0xF == 2
    assert (link_status >> 4) & 0x3F == 4


def test_pcie_capability_validates_parameters():
    with pytest.raises(ValueError):
        PcieCapability(max_link_speed=4)
    with pytest.raises(ValueError):
        PcieCapability(max_link_width=3)
    with pytest.raises(ValueError):
        MsixCapability(table_size=0)


def test_port_types_cover_switch_roles():
    assert PciePortType.UPSTREAM_SWITCH_PORT == 0x5
    assert PciePortType.DOWNSTREAM_SWITCH_PORT == 0x6
    assert PciePortType.ROOT_PORT == 0x4
