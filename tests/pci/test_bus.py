"""Unit tests for the classic shared PCI bus."""

import pytest

from repro.mem.addr import AddrRange
from repro.mem.port import PortError
from repro.pci.bus import MAX_PCI_LOADS, PciBus
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster, FakeSlave

PERIOD_33 = ticks.from_frequency_hz(33e6)


def build(sim, target_latency=0, **bus_kwargs):
    bus = PciBus(sim, **bus_kwargs)
    master = FakeMaster(sim, "cpu")
    master.port.bind(bus.attach_master("cpu"))
    target = FakeSlave(sim, "dev", ranges=[AddrRange(0x40000000, 0x10000)],
                       latency=target_latency)
    bus.attach_target("dev_side").bind(target.port)
    return bus, master, target


def test_clock_validation():
    with pytest.raises(ValueError):
        PciBus(Simulator(), clock_mhz=100)


def test_read_completes_through_shared_bus():
    sim = Simulator()
    bus, master, target = build(sim)
    master.read(0x40000000, 64)
    sim.run()
    assert len(master.responses) == 1
    assert bus.transactions.value() == 1
    assert bus.retry_cycles.value() == 0


def test_fast_target_no_retry_timing():
    sim = Simulator()
    bus, master, target = build(sim, target_latency=0)
    master.read(0x40000000, 64)
    sim.run()
    # arbitration (2) + address (1) + wait-deadline window + data (16).
    assert sim.curtick >= (2 + 1 + 16) * PERIOD_33


def test_slow_target_causes_retry_cycles():
    sim = Simulator()
    # 8 wait states at 33 MHz is ~242 ns; a 2 us target must bounce.
    bus, master, target = build(sim, target_latency=ticks.from_us(2))
    master.read(0x40000000, 64)
    sim.run()
    assert len(master.responses) == 1  # delayed transaction completes
    assert bus.retry_cycles.value() >= 1


def test_writes_are_posted_on_the_bus():
    sim = Simulator()
    bus, master, target = build(sim)
    from repro.mem.packet import MemCmd, Packet

    master._queue.push(Packet(MemCmd.MESSAGE, 0x40000000, 64, data=bytes(64)))
    sim.run()
    assert bus.transactions.value() == 1
    assert len(target.requests) == 1


def test_bus_serializes_masters():
    sim = Simulator()
    bus = PciBus(sim)
    masters = []
    for i in range(2):
        m = FakeMaster(sim, f"m{i}")
        m.port.bind(bus.attach_master(f"m{i}"))
        masters.append(m)
    target = FakeSlave(sim, "dev", ranges=[AddrRange(0x40000000, 0x10000)],
                       latency=0)
    bus.attach_target("dev_side").bind(target.port)
    masters[0].read(0x40000000, 64)
    masters[1].read(0x40001000, 64)
    sim.run()
    assert len(masters[0].responses) == 1
    assert len(masters[1].responses) == 1
    # Strictly serialized: second completion at least one full
    # transaction after the first.
    gaps = sorted(t.request_ticks[0] for t in [target])
    assert target.request_ticks[0] != target.request_ticks[0] + 1  # sanity
    assert bus.busy_ticks.value() >= 2 * (2 + 1 + 16) * PERIOD_33


def test_unclaimed_address_raises():
    sim = Simulator()
    bus, master, target = build(sim)
    master.read(0x90000000, 4)
    with pytest.raises(PortError):
        sim.run()


def test_load_limit_enforced():
    sim = Simulator()
    bus = PciBus(sim)
    for i in range(MAX_PCI_LOADS):
        if i % 2:
            bus.attach_master(f"m{i}")
        else:
            bus.attach_target(f"t{i}")
    with pytest.raises(PortError):
        bus.attach_master("one_too_many")


def test_queue_depth_refuses_excess():
    sim = Simulator()
    bus, master, target = build(sim, queue_depth=2,
                                target_latency=ticks.from_us(5))
    for i in range(8):
        master.read(0x40000000 + 64 * i, 64)
    sim.run(max_events=1_000_000)
    # All complete eventually via the retry protocol.
    assert len(master.responses) == 8


def test_efficiency_below_one_with_slow_target():
    sim = Simulator()
    bus, master, target = build(sim, target_latency=ticks.from_us(1))
    for i in range(4):
        master.read(0x40000000 + 64 * i, 64)
    sim.run()
    stats = sim.dump_stats()
    key = [k for k in stats if k.endswith("pci_bus.efficiency")][0]
    assert 0 < stats[key] < 0.9  # wait states + retries burn bus time


def test_explicit_target_ranges():
    sim = Simulator()
    bus = PciBus(sim)
    master = FakeMaster(sim, "cpu")
    master.port.bind(bus.attach_master("cpu"))
    target = FakeSlave(sim, "mem", ranges=[], latency=0)
    bus.attach_target(
        "mem_side", ranges=lambda: [AddrRange(0x80000000, 1 << 20)]
    ).bind(target.port)
    master.read(0x80000000, 4)
    sim.run()
    assert len(target.requests) == 1
