"""Unit tests for driver binding and capability negotiation."""

import pytest

from repro.drivers.base import Driver, DriverError
from repro.drivers.ide import IdeDiskDriver
from repro.drivers.e1000e import E1000eDriver
from repro.system.topology import build_nic_system, build_validation_system


def test_module_device_tables():
    assert (0x8086, 0x7111) in IdeDiskDriver.device_table
    assert (0x8086, 0x10D3) in E1000eDriver.device_table


def test_matches_uses_the_table():
    system = build_validation_system()
    disk_node = system.kernel.enumerator.find(0x8086, 0x7111)[0]
    assert IdeDiskDriver().matches(disk_node)
    assert not E1000eDriver().matches(disk_node)


def test_double_bind_rejected():
    system = build_validation_system()
    driver = system.disk_driver
    with pytest.raises(DriverError):
        driver.bind(system.kernel, driver.found, system.disk)


def test_bar_base_unknown_index_raises():
    system = build_validation_system()
    with pytest.raises(DriverError):
        system.disk_driver.bar_base(5)


def test_probe_without_device_model_fails():
    system = build_validation_system()
    node = system.kernel.enumerator.find(0x8086, 0x7111)[0]
    fresh = IdeDiskDriver()
    with pytest.raises(DriverError):
        fresh.bind(system.kernel, node, None)


def test_config_access_reaches_live_registers():
    system = build_nic_system()
    driver = system.nic_driver
    # The driver reads the same vendor id the hardware model holds.
    assert driver.config_read(0x00, 2) == 0x8086
    assert driver.config_read(0x02, 2) == 0x10D3


def test_capability_discovery_through_found_device():
    system = build_nic_system()
    driver = system.nic_driver
    assert driver._find_cap(0x10) is not None  # PCIe
    assert driver._find_cap(0x01) is not None  # PM
    assert driver._find_cap(0x42) is None


def test_program_msi_requires_doorbell():
    system = build_validation_system()  # no doorbell in the default build
    with pytest.raises(DriverError):
        system.disk_driver.program_msi(40)


def test_unimplemented_base_probe():
    class Stub(Driver):
        device_table = [(1, 2)]

    system = build_validation_system()
    node = system.kernel.enumerator.find(0x8086, 0x7111)[0]
    with pytest.raises(NotImplementedError):
        Stub().bind(system.kernel, node, system.disk)
