"""Stats/trace reconciliation for multi-flow runs on deep fabrics.

Two concurrent dd readers on a depth-2 switch spine, traced end to
end: the trace-derived event counts must agree *exactly* with every
link's live statistics, the engine residency summary must cover the
shared uplinks, and the per-flow byte counters must reconcile with the
disks' own transfer stats.  This pins the contract that a multi-flow
trace is a complete, lossless record of the run.
"""

import pytest

from repro.analysis.report import (reconcile_trace_with_link,
                                   trace_latency_breakdown)
from repro.obs.trace import MemorySink
from repro.system.spec import deep_hierarchy_spec
from repro.system.topology import build_system
from repro.workloads.traffic import FlowSpec, TrafficEngine

TRACE_CATEGORIES = ("link", "engine")


@pytest.fixture(scope="module")
def traced_run():
    """Two readers on a depth-2, fanout-2 spine: one on each level."""
    system = build_system(deep_hierarchy_spec(2, 2))
    sink = MemorySink()
    system.sim.tracer.categories = frozenset(TRACE_CATEGORIES)
    system.sim.tracer.attach(sink)
    flows = [
        FlowSpec(name="near", kind="dd_read", device="sw1_disk0",
                 requests=2, bytes_per_request=8192, seed=1),
        FlowSpec(name="far", kind="dd_read", device="sw2_disk1",
                 requests=2, bytes_per_request=8192, seed=2),
    ]
    engine = TrafficEngine(system, flows)
    engine.start()
    system.run(max_events=100_000_000)
    assert engine.completed
    return system, engine, sink


def test_trace_reconciles_with_every_link_exactly(traced_run):
    system, __, sink = traced_run
    breakdown = trace_latency_breakdown(sink.events)
    for link_name, link in sorted(system.links.items()):
        recon = reconcile_trace_with_link(breakdown, link)
        for interface, counts in recon.items():
            for stat_name, pair in counts.items():
                assert pair["stat"] == pair["trace"], \
                    (link_name, interface, stat_name)


def test_engine_residency_covers_the_shared_path(traced_run):
    __, ___, sink = traced_run
    breakdown = trace_latency_breakdown(sink.events)
    residency = breakdown["engine_residency"]
    assert residency, "no engine residencies in a switched-fabric trace"
    for comp, summary in residency.items():
        assert summary["count"] > 0, comp
        assert summary["max"] >= summary["ticks"] / summary["count"] > 0, comp
    # The far flow crosses both switches, so both levels must appear.
    assert any("sw1" in comp for comp in residency)
    assert any("sw2" in comp for comp in residency)


def test_flow_bytes_reconcile_with_disk_stats(traced_run):
    system, engine, __ = traced_run
    results = engine.results()
    sector = system.drivers["sw1_disk0"].sector_size
    for flow, disk_name in (("near", "sw1_disk0"), ("far", "sw2_disk1")):
        record = results["flows"][flow]
        disk = system.devices[disk_name]
        assert record["bytes"] == \
            disk.sectors_transferred.value() * sector
    # Untouched disks moved nothing: the flows never crossed devices.
    for name in ("sw1_disk1", "sw2_disk0"):
        assert system.devices[name].sectors_transferred.value() == 0


def test_stats_dump_agrees_with_results_dict(traced_run):
    system, engine, __ = traced_run
    results = engine.results()
    dump = system.sim.dump_stats()
    for flow in ("near", "far"):
        record = results["flows"][flow]
        assert dump[f"traffic.{flow}.bytes_moved"] == record["bytes"]
        assert dump[f"traffic.{flow}.requests_completed"] == \
            record["requests_completed"]
        assert dump[f"traffic.{flow}.request_ticks::count"] == \
            record["requests_completed"]
