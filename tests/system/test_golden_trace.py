"""Golden-trace regression tests.

The files in ``tests/golden/`` are the canonical, byte-exact TLP
lifecycles of two scenarios (see ``tests/golden/scenario.py``).  These
tests fail on *any* change to event ordering, tick values, sequence
numbers or the trace vocabulary — if the change was deliberate,
regenerate with ``PYTHONPATH=src:. python tests/golden/regen.py`` and
commit the diff alongside its cause.
"""

import difflib

import pytest

from repro.obs.trace import load_trace
from repro.sim import ticks

from tests.golden.scenario import SCENARIOS, golden_path, run_scenario


def read_golden(name: str) -> str:
    with open(golden_path(name)) as fh:
        return fh.read()


def first_difference(got: str, want: str) -> str:
    diff = difflib.unified_diff(
        want.splitlines(), got.splitlines(),
        fromfile="golden", tofile="this run", lineterm="", n=1,
    )
    lines = list(diff)[:12]
    return "\n".join(lines)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_trace_matches_golden_byte_for_byte(name):
    got = run_scenario(name)
    want = read_golden(name)
    assert got == want, (
        f"trace diverged from tests/golden/{name}.jsonl — if deliberate, "
        f"regenerate via tests/golden/regen.py.  First difference:\n"
        f"{first_difference(got, want)}"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_two_fresh_simulators_produce_identical_bytes(name):
    # The tracer's dense TLP ids make this hold even though packet ids
    # come from a process-global counter.
    assert run_scenario(name) == run_scenario(name)


def test_goldens_are_wellformed_traces():
    for name in SCENARIOS:
        header, events = load_trace(golden_path(name))
        assert header["meta"]["scenario"] == name
        assert header["meta"]["error_rate"] == SCENARIOS[name]["error_rate"]
        assert len(events) > 1000
        kinds = {ev["ev"] for ev in events}
        assert {"tlp_tx", "tlp_deliver", "dllp_tx", "ingress", "egress"} <= kinds
        if name == "dd_gen2x1_err":
            # The error-injected golden exercises the recovery machinery.
            assert "tlp_corrupt" in kinds
            assert any(ev.get("replay") for ev in events if ev["ev"] == "tlp_tx")


def test_golden_is_sensitive_to_a_one_knob_timing_change():
    # +1 ns of switch latency must flip the comparison red: the golden
    # pins timestamps, not just event order.
    got = run_scenario("dd_gen2x1", switch_latency=ticks.from_ns(151))
    assert got != read_golden("dd_gen2x1")


def test_golden_is_sensitive_to_a_replay_policy_change():
    # A two-entry replay buffer throttles the source where the default
    # four never fills at this block size.
    got = run_scenario("dd_gen2x1_err", replay_buffer_size=2)
    assert got != read_golden("dd_gen2x1_err")
