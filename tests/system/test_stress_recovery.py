"""Worst-case link-recovery test (the campaign's hardest corner).

Combined TLP and DLLP corruption with a single-entry replay buffer and
input queue forces every recovery path at once — NAK-triggered
replays, timeout-triggered replays of lost ACKs, and source throttling
— while the runtime invariant checker (armed in raise mode) proves the
link layer never breaks a protocol rule getting through it.
"""

from repro.system.topology import build_validation_system
from repro.workloads.dd import DdWorkload

BLOCK_BYTES = 64 * 1024


def test_worst_case_recovery_completes_with_zero_violations():
    system = build_validation_system(
        error_rate=0.2,
        dllp_error_rate=0.1,
        replay_buffer_size=1,
        input_queue_size=1,
        check=True,  # raise mode: any violation fails the test loudly
    )
    dd = DdWorkload(system.kernel, system.disk_driver, BLOCK_BYTES)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=50_000_000)

    assert process.done, "dd wedged under worst-case fault injection"
    assert system.sim.checker.violations == []
    assert dd.result.throughput_gbps > 0.0

    # The run really exercised the recovery machinery on the error-prone
    # fabric, not a lucky clean path.
    ifaces = [system.disk_link.upstream_if, system.disk_link.downstream_if,
              system.links["root"].upstream_if,
              system.links["root"].downstream_if]
    assert sum(i.corrupted.value() for i in ifaces) > 0
    assert sum(i.dllp_corrupted.value() for i in ifaces) > 0
    assert sum(i.tlp_replays.value() for i in ifaces) > 0
    assert sum(i.timeouts.value() for i in ifaces) > 0
    # Quiescence: nothing stranded anywhere in the link layer.
    for iface in ifaces:
        assert not iface.replay_buffer
        assert not iface.input_queue
        assert not iface.dllp_queue
