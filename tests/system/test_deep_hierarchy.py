"""Multi-level topologies built from specs: enumeration, routing, and
end-to-end traffic with the invariant checker armed.

Covers the issue's acceptance machine (depth-4 fan-out-4 from a JSON
document), the 3-deep switch chain with two devices per switch, and
the same-kind-device naming bug: two disks must keep distinct stats,
trace and driver identities end to end.
"""

import pytest

from repro.obs.trace import MemorySink
from repro.pci import header as hdr
from repro.system.spec import (DeviceSpec, SwitchSpec, TopologySpec,
                               deep_hierarchy_spec)
from repro.system.topology import AmbiguousDeviceError, build_system
from repro.workloads.dd import DdWorkload
from repro.workloads.mmio import MmioReadBench


def chain3_spec() -> TopologySpec:
    """A 3-deep switch chain, each switch carrying a disk and a NIC."""

    def level(n: int, children_tail):
        return SwitchSpec(name=f"sw{n}", children=[
            DeviceSpec("disk", name=f"sw{n}_disk"),
            DeviceSpec("nic", name=f"sw{n}_nic"),
        ] + children_tail)

    return TopologySpec(children=[
        level(1, [level(2, [level(3, [])])])
    ]).finalize()


def bridge_mem_window(system, node):
    """Decode a bridge's programmed type-1 memory window from config space."""
    base = system.host.config_read(*node.bdf, hdr.MEMORY_BASE, 2)
    limit = system.host.config_read(*node.bdf, hdr.MEMORY_LIMIT, 2)
    return ((base & 0xFFF0) << 16), (((limit & 0xFFF0) << 16) | 0xFFFFF)


# ------------------------------------------------- 3-deep chain (satellite)


def test_chain3_bus_numbers_follow_depth_first_discovery():
    system = build_system(chain3_spec())
    enumerator = system.kernel.enumerator
    rp0 = enumerator.roots[0]
    assert rp0.secondary_bus == 1 and rp0.subordinate_bus == 12

    by_name = {}
    for name in ("sw1_disk", "sw1_nic", "sw2_disk", "sw2_nic",
                 "sw3_disk", "sw3_nic"):
        fn = system.devices[name].function
        for node in enumerator.all_devices():
            if not node.is_bridge and system.host.function_at(*node.bdf) is fn:
                by_name[name] = node
    assert {n: d.bus for n, d in by_name.items()} == {
        "sw1_disk": 3, "sw1_nic": 4,
        "sw2_disk": 7, "sw2_nic": 8,
        "sw3_disk": 11, "sw3_nic": 12,
    }
    # The chain bridge of each switch subsumes everything below it.
    sw1_up = rp0.children[0]
    assert sw1_up.secondary_bus == 2 and sw1_up.subordinate_bus == 12
    chain_bridge = sw1_up.children[-1]
    assert chain_bridge.secondary_bus == 5 and chain_bridge.subordinate_bus == 12


def test_chain3_bridge_windows_contain_descendant_bars():
    system = build_system(chain3_spec())

    def check(bridge):
        endpoints = [n for n in bridge.endpoints()]
        mem_bars = [bar for node in endpoints for bar in node.bars
                    if not bar.io and bar.assigned is not None]
        assert mem_bars, "every subtree here has memory BARs"
        lo, hi = bridge_mem_window(system, bridge)
        for bar in mem_bars:
            assert lo <= bar.assigned.start and bar.assigned.end - 1 <= hi
        for child in bridge.children:
            if child.is_bridge:
                check(child)

    check(system.kernel.enumerator.roots[0])


def test_chain3_dma_and_mmio_routable_with_checker_armed():
    system = build_system(chain3_spec(), check=True)
    # DMA path: dd against the deepest disk crosses all three switches.
    dd = DdWorkload(system.kernel, system.drivers["sw3_disk"], 64 * 1024,
                    startup_overhead=0)
    dd_proc = system.kernel.spawn("dd", dd.run())
    system.run(max_events=50_000_000)
    assert dd_proc.done
    assert system.devices["sw3_disk"].sectors_transferred.value() == 16
    # MMIO path: register reads against the deepest NIC's BAR0.
    bench = MmioReadBench(system.kernel, system.drivers["sw3_nic"].bar0 + 0x8,
                          iterations=10)
    mmio_proc = system.kernel.spawn("mmio", bench.run())
    system.run(max_events=50_000_000)
    assert mmio_proc.done
    assert bench.mean_latency_ns > 0
    assert system.sim.checker.violations == []


def test_deeper_fabric_is_slower():
    shallow = build_system(deep_hierarchy_spec(1, 1))
    deep = build_system(deep_hierarchy_spec(4, 1))

    def throughput(system, name):
        dd = DdWorkload(system.kernel, system.drivers[name], 64 * 1024,
                        startup_overhead=0)
        proc = system.kernel.spawn("dd", dd.run())
        system.run(max_events=50_000_000)
        assert proc.done
        return dd.result.throughput_gbps

    assert throughput(shallow, "sw1_disk0") > throughput(deep, "sw4_disk0")


# ------------------------------------------- depth-4 fan-out-4 (acceptance)


def test_depth4_fanout4_builds_from_json_and_completes_dd():
    spec = deep_hierarchy_spec(4, 4)
    assert len(spec.devices()) >= 16
    rebuilt = TopologySpec.from_json(spec.to_json())
    system = build_system(rebuilt, check=True)
    assert len(system.switches) == 4
    # Every one of the 16 disks enumerated, got a BAR, and has a driver.
    for device in rebuilt.devices():
        driver = system.drivers[device.name]
        assert driver.bound and driver.bar0 != 0
    dd = DdWorkload(system.kernel, system.drivers["sw4_disk3"], 64 * 1024,
                    startup_overhead=0)
    proc = system.kernel.spawn("dd", dd.run())
    system.run(max_events=100_000_000)
    assert proc.done
    assert system.sim.checker.violations == []


# ------------------------------------- same-kind device identities (satellite)


def test_two_disks_keep_distinct_identities_end_to_end():
    spec = TopologySpec(children=[SwitchSpec(name="switch", children=[
        DeviceSpec("disk"), DeviceSpec("disk"),
    ])]).finalize()
    system = build_system(spec)
    sink = MemorySink()
    system.sim.tracer.categories = frozenset(("link",))
    system.sim.tracer.attach(sink)

    d0, d1 = system.devices["disk0"], system.devices["disk1"]
    assert d0 is not d1
    assert system.drivers["disk0"].device is d0
    assert system.drivers["disk1"].device is d1
    assert system.drivers["disk0"] is not system.drivers["disk1"]

    # Concurrent dd on both disks: per-instance counters must not alias.
    dd0 = DdWorkload(system.kernel, system.drivers["disk0"], 64 * 1024,
                     startup_overhead=0)
    dd1 = DdWorkload(system.kernel, system.drivers["disk1"], 128 * 1024,
                     startup_overhead=0)
    p0 = system.kernel.spawn("dd0", dd0.run())
    p1 = system.kernel.spawn("dd1", dd1.run())
    system.run(max_events=50_000_000)
    assert p0.done and p1.done
    assert d0.sectors_transferred.value() == 16
    assert d1.sectors_transferred.value() == 32

    # Stats keys are distinct per instance — no silent overwrite.
    stats = system.stats()
    s0 = {k for k in stats if k.startswith("disk0.")}
    s1 = {k for k in stats if k.startswith("disk1.")}
    assert s0 and s1
    assert stats["disk0.sectors_transferred"] == 16
    assert stats["disk1.sectors_transferred"] == 32
    assert {k for k in stats if k.startswith("disk0_link.")}
    assert {k for k in stats if k.startswith("disk1_link.")}

    # Trace component names are distinct per instance too.
    comps = {ev["comp"] for ev in sink.events}
    assert any("disk0_link" in c for c in comps)
    assert any("disk1_link" in c for c in comps)


def test_sole_disk_conveniences_survive_renaming():
    spec = TopologySpec(children=[
        DeviceSpec("disk", name="bulk_storage")]).finalize()
    system = build_system(spec)
    assert system.disk is system.devices["bulk_storage"]
    assert system.disk_driver is system.drivers["bulk_storage"]
    assert system.disk_link is system.links["bulk_storage"]


def test_ambiguous_disk_conveniences_raise_descriptive_error():
    spec = TopologySpec(children=[SwitchSpec(name="switch", children=[
        DeviceSpec("disk"), DeviceSpec("disk"),
    ])]).finalize()
    system = build_system(spec)
    # Regression: these used to return None silently, which misdirected
    # everything downstream; now they name the candidates and the fix.
    with pytest.raises(AmbiguousDeviceError, match=r"disk0, disk1"):
        system.disk
    with pytest.raises(AmbiguousDeviceError, match=r"system\.devices"):
        system.disk_driver
    with pytest.raises(AmbiguousDeviceError):
        system.disk_link
    # Absent kinds still read as None — only 2+ is an error.
    assert system.nic is None
    assert system.nic_driver is None
    assert system.accel is None
    assert system.accel_driver is None
