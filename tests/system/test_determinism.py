"""Whole-system determinism and statistics-dump sanity."""

import json

from repro.obs import MemorySink, export_stats
from repro.system.topology import build_validation_system
from repro.workloads.dd import DdWorkload


def run_once(trace=False, **kwargs):
    system = build_validation_system(**kwargs)
    sink = None
    if trace:
        system.sim.tracer.categories = frozenset(("link", "engine"))
        sink = system.sim.tracer.attach(MemorySink())
    dd = DdWorkload(system.kernel, system.disk_driver, 32 * 1024,
                    startup_overhead=0)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=10_000_000)
    assert process.done
    return system, dd, sink


def test_identical_configs_produce_identical_results():
    system_a, dd_a, __ = run_once()
    system_b, dd_b, __ = run_once()
    assert system_a.sim.curtick == system_b.sim.curtick
    assert dd_a.result.elapsed_ticks == dd_b.result.elapsed_ticks
    assert system_a.sim.eventq.events_processed == system_b.sim.eventq.events_processed


def test_determinism_holds_under_error_injection():
    runs = [run_once(error_rate=0.1)[1].result.elapsed_ticks for __ in range(2)]
    assert runs[0] == runs[1]


def test_stats_dump_covers_the_whole_tree():
    system, __, __s = run_once()
    flat = system.stats()
    # Spot-check every subsystem appears in the flattened tree.
    for needle in (
        "disk.sectors_transferred",
        "disk_link.up_link.packets",
        "root_complex.upstream.pool_occupancy",
        "switch.down_port0.ingress_refusals",
        "iocache.allocations",
        "dram.writes",
        "kernel.intc.dispatched",
        "membus.pkt_count",
    ):
        assert any(needle in key for key in flat), f"missing {needle}"
    # And the pretty renderer handles the full tree.
    text = system.sim.stats.pretty()
    assert "disk_link" in text


def test_stats_reset_zeroes_counters_but_keeps_wiring():
    system, __, __s = run_once()
    assert system.disk.sectors_transferred.value() > 0
    system.sim.reset_stats()
    assert system.disk.sectors_transferred.value() == 0
    # The system still works after a reset (fresh measurement interval).
    dd = DdWorkload(system.kernel, system.disk_driver, 8 * 1024,
                    startup_overhead=0)
    process = system.kernel.spawn("dd2", dd.run())
    system.run(max_events=10_000_000)
    assert process.done
    assert system.disk.sectors_transferred.value() == 2


def test_traces_are_identical_across_fresh_simulators():
    __, __d, sink_a = run_once(trace=True)
    __, __d, sink_b = run_once(trace=True)
    # Not just the same counts at the end — the same events at the same
    # ticks, byte for byte once serialized.
    assert sink_a.to_jsonl() == sink_b.to_jsonl()


def test_traces_are_identical_under_error_injection():
    sinks = [run_once(trace=True, error_rate=0.1)[2] for __ in range(2)]
    assert sinks[0].to_jsonl() == sinks[1].to_jsonl()
    # The error path really was exercised.
    assert any(ev["ev"] == "tlp_corrupt" for ev in sinks[0].events)


def test_stats_export_is_identical_across_fresh_simulators():
    system_a, __, __s = run_once()
    system_b, __, __s = run_once()
    doc_a = json.dumps(export_stats(system_a.sim), sort_keys=True)
    doc_b = json.dumps(export_stats(system_b.sim), sort_keys=True)
    assert doc_a == doc_b


def test_tracing_does_not_perturb_simulated_time():
    system_plain, dd_plain, __s = run_once()
    system_traced, dd_traced, sink = run_once(trace=True)
    # Observation is pure: same final tick, same event count, same
    # workload result whether or not a sink was attached.
    assert system_plain.sim.curtick == system_traced.sim.curtick
    assert (system_plain.sim.eventq.events_processed
            == system_traced.sim.eventq.events_processed)
    assert (dd_plain.result.elapsed_ticks == dd_traced.result.elapsed_ticks)
    assert len(sink.events) > 0
