"""Whole-system determinism and statistics-dump sanity."""

from repro.system.topology import build_validation_system
from repro.workloads.dd import DdWorkload


def run_once(**kwargs):
    system = build_validation_system(**kwargs)
    dd = DdWorkload(system.kernel, system.disk_driver, 32 * 1024,
                    startup_overhead=0)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=10_000_000)
    assert process.done
    return system, dd


def test_identical_configs_produce_identical_results():
    system_a, dd_a = run_once()
    system_b, dd_b = run_once()
    assert system_a.sim.curtick == system_b.sim.curtick
    assert dd_a.result.elapsed_ticks == dd_b.result.elapsed_ticks
    assert system_a.sim.eventq.events_processed == system_b.sim.eventq.events_processed


def test_determinism_holds_under_error_injection():
    runs = [run_once(error_rate=0.1)[1].result.elapsed_ticks for __ in range(2)]
    assert runs[0] == runs[1]


def test_stats_dump_covers_the_whole_tree():
    system, __ = run_once()
    flat = system.stats()
    # Spot-check every subsystem appears in the flattened tree.
    for needle in (
        "disk.sectors_transferred",
        "disk_link.up_link.packets",
        "root_complex.upstream.pool_occupancy",
        "switch.down_port0.ingress_refusals",
        "iocache.allocations",
        "dram.writes",
        "kernel.intc.dispatched",
        "membus.pkt_count",
    ):
        assert any(needle in key for key in flat), f"missing {needle}"
    # And the pretty renderer handles the full tree.
    text = system.sim.stats.pretty()
    assert "disk_link" in text


def test_stats_reset_zeroes_counters_but_keeps_wiring():
    system, __ = run_once()
    assert system.disk.sectors_transferred.value() > 0
    system.sim.reset_stats()
    assert system.disk.sectors_transferred.value() == 0
    # The system still works after a reset (fresh measurement interval).
    dd = DdWorkload(system.kernel, system.disk_driver, 8 * 1024,
                    startup_overhead=0)
    process = system.kernel.spawn("dd2", dd.run())
    system.run(max_events=10_000_000)
    assert process.done
    assert system.disk.sectors_transferred.value() == 2
