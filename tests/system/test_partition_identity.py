"""Byte-identity battery: partitioned runs vs the single-process hybrid.

The partitioned engine's contract is that engaging it is unobservable:
the same trace bytes on the golden scenarios, the same statistics
document and checkpoint digest on deeper fabrics, fault injection
included.  Every test here runs the same scenario twice (or three
times) — once per backend/partition-count — in fresh simulators, and
compares the artifacts byte for byte.

Each partitioned run also *asserts engagement* (via a probe wrapped
around ``PartitionEngine.run``): a fallback to the serial drain would
make these comparisons trivially green without testing anything.

One honest caveat, documented in ARCHITECTURE.md: on fabrics with
traffic in both directions across a cut, trace records emitted by
*different* partitions at the same tick merge in a deterministic
conventional order that may differ from hybrid's global schedule order
(that interleaving is sequential information a conservative parallel
engine does not have).  Stats and checkpoints are unaffected — state
is; record order between decoupled partitions within one tick is not.
The golden validation-fabric scenarios are byte-identical including
trace order, and CI enforces that; the deep-hierarchy tests pin stats
and checkpoint digests.
"""

import json

import pytest

import repro.sim.partition as partition_mod
from repro.sim.checkpoint import checkpoint_digest
from repro.system.spec import deep_hierarchy_spec
from repro.workloads.scenarios import Scenario
from repro.workloads.scenarios import run_scenario as run_traffic_scenario
from repro.workloads.traffic import FlowSpec

from tests.golden.scenario import run_scenario as run_golden_scenario


@pytest.fixture
def engaged(monkeypatch):
    """Probe that records each PartitionEngine engagement's rank count."""
    counts = []
    real_run = partition_mod.PartitionEngine.run

    def probe(self, max_events):
        counts.append(self.nparts)
        return real_run(self, max_events)

    monkeypatch.setattr(partition_mod.PartitionEngine, "run", probe)
    return counts


@pytest.fixture
def backend_env(monkeypatch):
    """Setter for the backend / partition-count environment knobs."""

    def select(backend=None, partitions=None):
        for name in ("REPRO_BACKEND", partition_mod.PARTITIONS_ENV):
            monkeypatch.setenv(name, "sentinel")
            monkeypatch.delenv(name)
        if backend is not None:
            monkeypatch.setenv("REPRO_BACKEND", backend)
        if partitions is not None:
            monkeypatch.setenv(partition_mod.PARTITIONS_ENV,
                               str(partitions))

    return select


# ------------------------------------------- validation-fabric golden runs


def test_golden_dd_trace_is_byte_identical(backend_env, engaged):
    backend_env("hybrid")
    hybrid = run_golden_scenario("dd_gen2x1", enable_msi=True)
    assert engaged == []
    backend_env("parallel")
    parallel = run_golden_scenario("dd_gen2x1", enable_msi=True)
    assert engaged == [2]
    assert parallel == hybrid


def test_fault_injected_golden_trace_is_byte_identical(backend_env, engaged):
    # error_rate=0.2 exercises NAK/replay across the cut;
    # dllp_error_rate additionally corrupts the ack/credit DLLPs the
    # sync protocol itself rides on, arming the fc watchdogs.
    overrides = {"enable_msi": True, "dllp_error_rate": 0.05}
    backend_env("hybrid")
    hybrid = run_golden_scenario("dd_gen2x1_err", **overrides)
    backend_env("parallel")
    parallel = run_golden_scenario("dd_gen2x1_err", **overrides)
    assert engaged == [2]
    assert parallel == hybrid


# ------------------------------------------------- deep-hierarchy identity


def _deep_scenario():
    """Four concurrent dd readers spread over the depth-4 chain fabric."""
    topo = deep_hierarchy_spec(4, 1, enable_msi=True)
    flows = [
        FlowSpec(name=f"r{i}", kind="dd_read", device=f"sw{i + 1}_disk0",
                 requests=6, bytes_per_request=16384, seed=7 + i)
        for i in range(4)
    ]
    return Scenario(name="deep_msi", topology=topo, flows=flows)


def _run_deep(check=False):
    system, engine = run_traffic_scenario(_deep_scenario(), check=check)
    assert engine.completed
    stats = json.dumps(system.sim.dump_stats(), sort_keys=True)
    return stats, checkpoint_digest(system.sim.checkpoint())


@pytest.mark.slow
def test_deep_hierarchy_identity_at_two_and_four_partitions(backend_env,
                                                            engaged):
    backend_env("hybrid")
    stats_h, digest_h = _run_deep()
    assert engaged == []
    backend_env("parallel", partitions=2)
    stats_p2, digest_p2 = _run_deep()
    assert engaged == [2]
    backend_env("parallel", partitions=4)
    stats_p4, digest_p4 = _run_deep()
    assert engaged == [2, 4]
    assert stats_p2 == stats_h
    assert stats_p4 == stats_h
    assert digest_p2 == digest_h
    assert digest_p4 == digest_h


@pytest.mark.slow
def test_dense_fanout_identity_pins_live_tail_placement(backend_env,
                                                        engaged):
    # Regression pin for the squashed-prefix insert bug: on a fanout-2
    # fabric the replay-timer descheduling leaves far-future squashed
    # keys in the active batch's consumed prefix, and a whole-list
    # bisect there once stacked boundary deliveries in reverse tick
    # order (one UpdateFC DLLP shifted 2000 ticks, five stats moved).
    # Placement must bisect the live tail only.
    topo = deep_hierarchy_spec(4, 2, enable_msi=True)
    flows = [
        FlowSpec(name=f"r{i}", kind="dd_read",
                 device=f"sw{(i % 4) + 1}_disk{i // 4}",
                 requests=6, bytes_per_request=16384, seed=7 + i)
        for i in range(8)
    ]
    scenario = Scenario(name="dense_msi", topology=topo, flows=flows)

    def run_once():
        system, engine = run_traffic_scenario(scenario)
        assert engine.completed
        return (json.dumps(system.sim.dump_stats(), sort_keys=True),
                checkpoint_digest(system.sim.checkpoint()))

    backend_env("hybrid")
    stats_h, digest_h = run_once()
    backend_env("parallel", partitions=2)
    stats_p, digest_p = run_once()
    assert engaged == [2]
    assert stats_p == stats_h
    assert digest_p == digest_h


@pytest.mark.slow
def test_deep_hierarchy_identity_under_the_checker(backend_env, engaged):
    # The invariant checker's ledgers are merged by ownership after a
    # partitioned run; a green check plus identical digests shows the
    # merged ledgers describe the same machine hybrid saw.
    backend_env("hybrid")
    stats_h, digest_h = _run_deep(check=True)
    backend_env("parallel", partitions=4)
    stats_p, digest_p = _run_deep(check=True)
    assert engaged == [4]
    assert stats_p == stats_h
    assert digest_p == digest_h
