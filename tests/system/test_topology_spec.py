"""Unit tests for the declarative topology spec layer.

Covers the spec grammar itself (round-trip, canonicalisation,
auto-naming, validation), the thin-wrapper property of the legacy
builders, the MSI-doorbell field move with its deprecation alias, and
the harness ``--list`` discovery path.
"""

import json

import pytest

from repro.system.spec import (ClassicPciSpec, DeviceSpec, LinkSpec,
                               SpecError, SwitchSpec, TopologySpec,
                               classic_pci_spec, deep_hierarchy_spec,
                               dual_device_spec, nic_spec, spec_from_dict,
                               validation_spec)
from repro.system.topology import build_system, build_validation_system


# -------------------------------------------------------------- serialisation


def test_validation_spec_round_trips_through_json():
    spec = validation_spec(root_link_width=8, error_rate=0.02)
    text = spec.to_json()
    again = TopologySpec.from_json(text)
    assert again.canonical() == spec.canonical()
    assert again.digest() == spec.digest()
    # The JSON really is JSON, and carries the knobs we set.
    doc = json.loads(text)
    assert doc["kind"] == "pcie"
    assert doc["children"][0]["link"]["width"] == 8
    assert doc["children"][0]["children"][0]["link"]["error_rate"] == 0.02


def test_all_named_specs_round_trip():
    for spec in (validation_spec(), nic_spec(), dual_device_spec(),
                 deep_hierarchy_spec(2, 3)):
        again = spec_from_dict(json.loads(spec.to_json()))
        assert again.canonical() == spec.canonical()


def test_classic_spec_round_trips_via_spec_from_dict():
    spec = classic_pci_spec(clock_mhz=66)
    again = spec_from_dict(spec.to_dict())
    assert isinstance(again, ClassicPciSpec)
    assert again.canonical() == spec.canonical()
    assert again.clock_mhz == 66


def test_per_class_credits_round_trip_and_move_the_digest():
    link = LinkSpec(name="l", p_credits=8, np_credits=2, cpl_credits=3)
    spec = TopologySpec(children=[DeviceSpec("disk", link=link)]).finalize()
    doc = json.loads(spec.to_json())
    assert doc["children"][0]["link"]["p_credits"] == 8
    assert doc["children"][0]["link"]["np_credits"] == 2
    assert doc["children"][0]["link"]["cpl_credits"] == 3
    again = TopologySpec.from_json(spec.to_json())
    assert again.canonical() == spec.canonical()
    # The credit knobs are part of the experiment's identity.
    default = TopologySpec(children=[
        DeviceSpec("disk", link=LinkSpec(name="l"))]).finalize()
    assert default.digest() != spec.digest()
    # Defaults reproduce the pre-split 16-slot aggregate capacity.
    d = LinkSpec(name="d")
    assert d.p_credits + d.np_credits + d.cpl_credits == 16


def test_zero_credit_class_is_rejected():
    with pytest.raises(SpecError, match="cpl_credits"):
        TopologySpec(children=[
            DeviceSpec("disk", link=LinkSpec(name="l", cpl_credits=0))
        ]).finalize()


def test_canonical_is_order_insensitive_and_digest_tracks_content():
    a = validation_spec()
    b = validation_spec()
    assert a.canonical() == b.canonical()
    c = validation_spec(device_link_width=2)
    assert a.canonical() != c.canonical()
    assert a.digest() != c.digest()
    assert len(a.digest()) == 12


def test_spec_from_dict_rejects_unknown_kind():
    with pytest.raises(SpecError, match="unknown topology spec kind"):
        spec_from_dict({"kind": "infiniband"})


# -------------------------------------------------------- naming & validation


def test_auto_naming_fills_unnamed_nodes_per_kind():
    spec = TopologySpec(children=[SwitchSpec(children=[
        DeviceSpec("disk"),
        DeviceSpec("disk", name="bulk"),
        DeviceSpec("nic"),
        DeviceSpec("disk"),
    ])]).finalize()
    names = [d.name for d in spec.devices()]
    assert names == ["disk0", "bulk", "nic0", "disk1"]
    assert spec.switches()[0].name == "switch0"
    # Unnamed links inherit their node's name.
    assert spec.devices()[0].link.name == "disk0"


def test_auto_naming_skips_explicitly_taken_names():
    spec = TopologySpec(children=[SwitchSpec(name="switch0", children=[
        DeviceSpec("disk", name="disk0"),
        DeviceSpec("disk"),
    ])]).finalize()
    assert [d.name for d in spec.devices()] == ["disk0", "disk1"]


def test_duplicate_instance_names_are_rejected():
    spec = TopologySpec(children=[SwitchSpec(name="sw", children=[
        DeviceSpec("disk", name="dup"),
        DeviceSpec("disk", name="dup"),
    ])])
    with pytest.raises(SpecError, match="duplicate instance name"):
        spec.finalize()


def test_unknown_device_kind_is_rejected():
    with pytest.raises(SpecError, match="unknown kind"):
        TopologySpec(children=[DeviceSpec("gpu")]).finalize()


def test_unknown_generation_is_rejected():
    with pytest.raises(SpecError, match="unknown generation"):
        TopologySpec(children=[
            DeviceSpec("disk", link=LinkSpec(gen="GEN9"))
        ]).finalize()


def test_children_must_fit_declared_ports():
    switch = SwitchSpec(name="sw", num_ports=1, children=[
        DeviceSpec("disk"), DeviceSpec("disk")])
    with pytest.raises(SpecError, match="do not fit"):
        TopologySpec(children=[switch]).finalize()


def test_empty_topology_is_rejected():
    with pytest.raises(SpecError, match="at least one node"):
        TopologySpec().finalize()


def test_classic_spec_rejects_nic():
    with pytest.raises(SpecError, match="only the disk"):
        ClassicPciSpec(device=DeviceSpec("nic")).finalize()


def test_deep_hierarchy_shape():
    spec = deep_hierarchy_spec(3, 2)
    assert len(spec.devices()) == 6
    assert [s.name for s in spec.switches()] == ["sw1", "sw2", "sw3"]
    # Non-leaf switches carry fanout devices plus the chain port.
    assert spec.switches()[0].effective_num_ports == 3
    assert spec.switches()[-1].effective_num_ports == 2


# ------------------------------------------------------------- thin wrappers


def test_legacy_builder_records_its_spec():
    system = build_validation_system()
    assert system.spec is not None
    assert system.spec.name == "validation"
    assert system.spec.canonical() == validation_spec().canonical()


def test_build_system_accepts_plain_dicts():
    system = build_system(nic_spec().to_dict())
    assert system.nic is not None
    assert system.nic_driver.bound


# ------------------------------------------------- MSI doorbell field (satellite)


def test_msi_doorbell_is_a_field_not_a_device():
    system = build_validation_system(enable_msi=True)
    assert system.msi_doorbell is not None
    assert "msi_doorbell" not in dict(system.devices)
    assert system.kernel.msi_target_addr == system.msi_doorbell.range.start


def test_msi_doorbell_legacy_alias_is_gone():
    # The deprecated ``devices["msi_doorbell"]`` alias (a _DeviceMap
    # shim that warned and forwarded to the field) has been removed:
    # ``devices`` is a plain dict of actual endpoint devices again.
    system = build_validation_system(enable_msi=True)
    assert type(system.devices) is dict
    assert "msi_doorbell" not in system.devices
    assert system.devices.get("msi_doorbell") is None
    with pytest.raises(KeyError):
        system.devices["msi_doorbell"]
    # The doorbell itself still exists — as the dedicated field.
    assert system.msi_doorbell is not None


def test_no_doorbell_without_msi():
    system = build_validation_system()
    assert system.msi_doorbell is None
    assert "msi_doorbell" not in system.devices
    assert system.devices.get("msi_doorbell") is None
    with pytest.raises(KeyError):
        system.devices["msi_doorbell"]


# ----------------------------------------------------- harness --list (satellite)


def test_harness_list_prints_descriptions_and_exits_zero(capsys):
    from benchmarks import harness, sweeps
    from repro.sim.backend import backend_names

    assert harness.main(["--list"]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    sweep_lines = [line for line in lines if not line.startswith("backend")]
    backend_lines = [line for line in lines if line.startswith("backend")]
    assert len(sweep_lines) == len(sweeps.SWEEPS)
    for name in sweeps.SWEEPS:
        assert any(line.startswith(name) for line in sweep_lines)
    # One-line descriptions ride along, deep_hierarchy included.
    deep = next(line for line in lines if line.startswith("deep_hierarchy"))
    assert "depth" in deep and "fan-out" in deep
    # The backend registry rides along too, default starred.
    assert len(backend_lines) == len(backend_names())
    assert any(line.startswith("backend *hybrid") for line in backend_lines)
