"""End-to-end tests of the MSI extension (the paper's future-work path:
interrupts as posted memory writes through the PCI-Express fabric)."""

import pytest

from repro.sim import ticks
from repro.system.topology import build_nic_system, build_validation_system
from repro.workloads.dd import DdWorkload


def test_driver_chooses_msi_when_enable_bit_sticks():
    system = build_validation_system(enable_msi=True)
    assert system.disk_driver.interrupt_mode == "msi"


def test_default_system_still_falls_back_to_legacy():
    system = build_validation_system()
    assert system.disk_driver.interrupt_mode == "legacy"


def test_msi_capability_programmed_at_doorbell():
    from repro.pci.capabilities import CAP_ID_MSI, MsiCapability

    system = build_validation_system(enable_msi=True)
    fn = system.disk.function
    offset = fn.find_capability(CAP_ID_MSI)
    assert fn.config_read(offset + MsiCapability.CONTROL, 2) & 0x1
    assert (
        fn.config_read(offset + MsiCapability.ADDRESS, 4)
        == system.kernel.msi_target_addr
    )
    assert (
        fn.config_read(offset + MsiCapability.DATA, 2)
        == system.disk_driver.found.interrupt_line
    )


def test_dd_completes_via_msi_memory_writes():
    system = build_validation_system(enable_msi=True)
    dd = DdWorkload(system.kernel, system.disk_driver, 64 * 1024,
                    startup_overhead=0)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=20_000_000)
    assert process.done
    doorbell = system.msi_doorbell
    # One command (16 sectors < 32/request): one interrupt, as an MSI.
    assert doorbell.msis_received.value() >= 1
    assert system.disk.msis_sent.value() == doorbell.msis_received.value()
    assert system.kernel.intc.dispatched.value() >= 1


def test_msi_throughput_comparable_to_legacy():
    legacy = build_validation_system()
    msi = build_validation_system(enable_msi=True)
    results = {}
    for name, system in (("legacy", legacy), ("msi", msi)):
        dd = DdWorkload(system.kernel, system.disk_driver, 64 * 1024,
                        startup_overhead=0)
        system.kernel.spawn("dd", dd.run())
        system.run(max_events=20_000_000)
        results[name] = dd.result.throughput_gbps
    assert results["msi"] == pytest.approx(results["legacy"], rel=0.10)


def test_nic_msi_loopback_round_trip():
    from repro.sim.process import WaitFor

    system = build_nic_system(enable_msi=True)
    driver = system.nic_driver
    assert driver.interrupt_mode == "msi"
    done = {}

    def body():
        yield from driver.bring_up()
        yield from driver.enable_loopback()
        rx = driver.post_rx_buffer(0x92000000, 2048)
        tx = yield from driver.transmit(0x91000000, 1200)
        yield WaitFor(tx)
        yield WaitFor(rx)
        done["ok"] = True

    system.kernel.spawn("loopback", body())
    system.run(max_events=5_000_000)
    assert done.get("ok")
    assert system.msi_doorbell.msis_received.value() >= 2


def test_msi_writes_travel_the_fabric():
    """The MSI must be a real posted write crossing the links — not a
    wire shortcut."""
    system = build_validation_system(enable_msi=True)
    dd = DdWorkload(system.kernel, system.disk_driver, 16 * 1024,
                    startup_overhead=0)
    system.kernel.spawn("dd", dd.run())
    before = system.disk_link.up_link.packets.value()
    system.run(max_events=20_000_000)
    doorbell = system.msi_doorbell
    assert doorbell.msis_received.value() >= 1
    # The MSI adds at least one extra upstream TLP beyond the DMA writes.
    dma_packets = 4 * 64  # 16 KB of 64B write TLPs
    assert system.disk_link.downstream_if.tlps_sent.value() > dma_packets
