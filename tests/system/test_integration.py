"""End-to-end integration tests on the assembled systems."""

import pytest

from repro.pcie.timing import PcieGen
from repro.sim import ticks
from repro.system.topology import (
    build_dual_device_system,
    build_nic_system,
    build_validation_system,
)
from repro.workloads.dd import DdWorkload
from repro.workloads.mmio import MmioReadBench


# ---------------------------------------------------------------- enumeration


def test_validation_system_enumerates_paper_topology():
    system = build_validation_system()
    enumerator = system.kernel.enumerator
    # Depth-first numbering: root port sec=1, switch upstream sec=2,
    # first downstream sec=3 (the disk's bus), second downstream sec=4.
    rp0 = enumerator.roots[0]
    assert rp0.is_bridge and rp0.secondary_bus == 1
    upstream = rp0.children[0]
    assert upstream.secondary_bus == 2
    down0, down1 = upstream.children
    assert down0.secondary_bus == 3
    assert down1.secondary_bus == 4
    (disk_node,) = down0.children
    assert (disk_node.vendor_id, disk_node.device_id) == (0x8086, 0x7111)
    assert disk_node.bus == 3


def test_disk_driver_probe_falls_back_to_legacy_interrupt():
    system = build_validation_system()
    driver = system.disk_driver
    assert driver.bound
    assert driver.interrupt_mode == "legacy"
    assert driver.bar0 != 0
    assert system.addrmap.pci_mem.contains(driver.bar0)


def test_rc_claims_programmed_windows():
    system = build_validation_system()
    ranges = system.root_complex.upstream_slave.get_ranges()
    assert ranges, "RC must claim the enumerated windows"
    assert any(r.contains(system.disk_driver.bar0) for r in ranges)


# ---------------------------------------------------------------- dd workload


def run_dd(system, block_size):
    dd = DdWorkload(system.kernel, system.disk_driver, block_size,
                    startup_overhead=0)
    proc = system.kernel.spawn("dd", dd.run())
    system.run(max_events=20_000_000)
    assert proc.done, "dd never finished"
    return dd.result


def test_dd_reads_complete_and_report_throughput():
    system = build_validation_system()
    result = run_dd(system, 64 * 1024)  # 16 sectors
    assert result.nbytes == 64 * 1024
    assert system.disk.sectors_transferred.value() == 16
    # Gen 2 x1 wire rate for 64B-payload TLPs is ~3.05 Gbps; dd-level
    # throughput must be below that but same order.
    assert 1.0 < result.throughput_gbps < 3.05


def test_dd_device_level_rate_near_wire_rate():
    system = build_validation_system()
    run_dd(system, 128 * 1024)
    mean_ticks = system.disk.sector_transfer_ticks.mean
    gbps = 4096 * 8 / ticks.to_ns(mean_ticks)
    # The paper reports 3.072 Gbps at device level on Gen 2 x1; the DMA
    # barrier and fabric round trip keep ours a bit below the 3.05 wire
    # rate but well above 2.
    assert 2.0 < gbps <= 3.05


def test_dd_no_replays_at_x1(caplog=None):
    system = build_validation_system()
    run_dd(system, 64 * 1024)
    assert system.disk_link.downstream_if.tlp_replays.value() == 0
    assert system.disk_link.downstream_if.timeouts.value() == 0


def test_wider_device_link_is_faster():
    slow = build_validation_system(device_link_width=1)
    fast = build_validation_system(device_link_width=4)
    r1 = run_dd(slow, 64 * 1024)
    r4 = run_dd(fast, 64 * 1024)
    assert r4.throughput_gbps > r1.throughput_gbps * 1.3


def test_lower_switch_latency_slightly_faster():
    slow = build_validation_system(switch_latency=ticks.from_ns(150))
    fast = build_validation_system(switch_latency=ticks.from_ns(50))
    rs = run_dd(slow, 64 * 1024)
    rf = run_dd(fast, 64 * 1024)
    assert rf.throughput_gbps > rs.throughput_gbps
    # The paper: ~3% improvement — small, not transformative.
    assert rf.throughput_gbps < rs.throughput_gbps * 1.15


def test_dma_traffic_flows_through_iocache_to_dram():
    system = build_validation_system()
    run_dd(system, 64 * 1024)
    assert system.iocache.allocations.value() > 0
    assert system.dram.writes.value() > 0


def test_posted_write_ablation_is_faster():
    baseline = build_validation_system()
    posted = build_validation_system(posted_writes=True)
    rb = run_dd(baseline, 64 * 1024)
    rp = run_dd(posted, 64 * 1024)
    assert rp.throughput_gbps > rb.throughput_gbps


# ---------------------------------------------------------------- NIC / Table II


def test_nic_system_probe_and_bring_up():
    system = build_nic_system()
    driver = system.nic_driver
    assert driver.interrupt_mode == "legacy"
    done = {}

    def body():
        status = yield from driver.bring_up()
        done["status"] = status

    system.kernel.spawn("bring_up", body())
    system.run()
    assert done["status"] & 0x2  # link up


def test_mmio_latency_grows_with_rc_latency():
    means = {}
    for rc_ns in (50, 150):
        system = build_nic_system(rc_latency=ticks.from_ns(rc_ns))
        bench = MmioReadBench(system.kernel, system.nic_driver.bar0 + 0x8,
                              iterations=20)
        system.kernel.spawn("mmio", bench.run())
        system.run()
        means[rc_ns] = bench.mean_latency_ns
    # Request and response both cross the RC: >= 2x the latency delta.
    delta = means[150] - means[50]
    assert delta >= 2 * (150 - 50) * 0.9
    assert means[50] > 150  # fabric adds more than just the RC


def test_nic_tx_through_full_fabric():
    system = build_nic_system()
    driver = system.nic_driver
    done = {}

    def body():
        yield from driver.bring_up()
        signal = yield from driver.transmit(0x90000000, 1500)
        from repro.sim.process import WaitFor
        yield WaitFor(signal)
        done["tick"] = system.sim.curtick

    system.kernel.spawn("tx", body())
    system.run(max_events=5_000_000)
    assert "tick" in done
    assert system.nic.frames_transmitted.value() == 1
    assert system.dram.reads.value() > 0  # descriptor + payload fetches


# ---------------------------------------------------------------- dual-device


def test_dual_device_system_boots_both_drivers():
    system = build_dual_device_system()
    assert system.disk_driver.bound
    assert system.nic_driver.bound
    # Disk on bus 3, NIC on bus 4.
    disk_nodes = system.kernel.enumerator.find(0x8086, 0x7111)
    nic_nodes = system.kernel.enumerator.find(0x8086, 0x10D3)
    assert disk_nodes[0].bus == 3
    assert nic_nodes[0].bus == 4


def test_dual_device_concurrent_traffic():
    system = build_dual_device_system()
    finished = []

    def disk_job():
        dd = DdWorkload(system.kernel, system.disk_driver, 32 * 1024,
                        startup_overhead=0)
        yield from dd.run()
        finished.append("disk")

    def nic_job():
        from repro.sim.process import WaitFor
        yield from system.nic_driver.bring_up()
        for i in range(4):
            sig = yield from system.nic_driver.transmit(0x91000000, 1500)
            yield WaitFor(sig)
        finished.append("nic")

    system.kernel.spawn("disk_job", disk_job())
    system.kernel.spawn("nic_job", nic_job())
    system.run(max_events=20_000_000)
    assert sorted(finished) == ["disk", "nic"]


# ---------------------------------------------------------------- classic PCI


def test_classic_pci_system_boots_and_reads():
    from repro.system.topology import build_classic_pci_system

    system = build_classic_pci_system()
    assert system.disk_driver.bound
    result = run_dd(system, 32 * 1024)
    assert result.nbytes == 32 * 1024
    bus = system.devices["pci_bus"]
    assert bus.transactions.value() > 0


def test_classic_pci_much_slower_than_pcie():
    from repro.system.topology import build_classic_pci_system

    classic = build_classic_pci_system()
    pcie = build_validation_system()
    rc = run_dd(classic, 32 * 1024)
    rp = run_dd(pcie, 32 * 1024)
    # A 33 MHz shared bus cannot approach a Gen 2 x1 serial link.
    assert rp.throughput_gbps > 2 * rc.throughput_gbps
