"""The fault-injection stress campaign, via the repro.exp sweep engine.

The full 36-point grid (error_rate x dllp_error_rate x
replay_buffer_size x input_queue_size) runs in CI through
``python -m benchmarks.harness stress``; here a deterministic sample of
the grid's corners runs through the engine uncached so tier-1 proves
the campaign machinery end to end: every sampled configuration must
complete its transfer with zero invariant violations.
"""

from benchmarks.sweeps import (
    STRESS_DLLP_ERROR_RATES,
    STRESS_ERROR_RATES,
    STRESS_INPUT_QUEUES,
    STRESS_REPLAY_BUFFERS,
    stress_sweep,
)
from repro.exp import Sweep, SweepEngine

#: The corners tier-1 runs: clean baseline, the worst of each error
#: kind alone, and everything-at-once on the tightest buffers.
SAMPLED_KEYS = (
    "er0.0/dllp0.0/rb4/iq2",
    "er0.1/dllp0.0/rb1/iq2",
    "er0.0/dllp0.1/rb2/iq1",
    "er0.1/dllp0.1/rb1/iq1",
)


def test_grid_shape_and_params_are_json_safe():
    sweep = stress_sweep()
    grid = (len(STRESS_ERROR_RATES) * len(STRESS_DLLP_ERROR_RATES)
            * len(STRESS_REPLAY_BUFFERS) * len(STRESS_INPUT_QUEUES))
    # The full grid plus the checker-armed multi-flow and
    # credit-starvation scenario points.
    assert len(sweep) == grid + 2 == 38
    assert "multiflow/er0.02" in {p.key for p in sweep.points}
    assert "np_storm/unpinned" in {p.key for p in sweep.points}
    # SweepPoint construction already validated canonical-JSON-safety;
    # spot-check the campaign's swept knobs are all present.
    point = sweep.points[0]
    for knob in ("block_bytes", "error_rate", "dllp_error_rate",
                 "replay_buffer_size", "input_queue_size"):
        assert knob in point.params


def test_sampled_campaign_corners_complete_with_zero_violations():
    full = stress_sweep()
    by_key = {p.key: p for p in full.points}
    sampled = Sweep("stress_sample")
    for key in SAMPLED_KEYS:
        point = by_key[key]  # KeyError here means the grid changed
        sampled.add(key, point.runner, **point.params)

    engine = SweepEngine(cache_dir=None)  # always simulate fresh
    result = engine.run(sampled)

    assert set(result.results) == set(SAMPLED_KEYS)
    for key, metrics in result.results.items():
        assert metrics["completed"] == 1.0, f"{key} wedged"
        assert metrics["violations"] == 0.0, (
            f"{key} violated {metrics['violated_rules']}")
    # The error-injecting corners really corrupted traffic.
    assert result.results["er0.1/dllp0.1/rb1/iq1"]["tlps_corrupted"] > 0
    assert result.results["er0.1/dllp0.1/rb1/iq1"]["dllps_corrupted"] > 0
    assert result.results["er0.0/dllp0.0/rb4/iq2"]["tlps_corrupted"] == 0
