"""Unit tests for the runtime invariant checker (repro.check).

Each protocol rule gets a positive test (a deliberately broken exchange
fires exactly that rule) and the legal variants around it stay silent.
Negative tests use ``record_only`` so one test can observe several
rules without the first raise aborting the exchange.
"""

import pytest

from repro.check import InvariantChecker, InvariantViolation
from repro.mem.packet import MemCmd, Packet
from repro.mem.port import MasterPort, PortError, SlavePort
from repro.pcie.fc import CreditLedger
from repro.pcie.pkt import PciePacket
from repro.sim.eventq import CallbackEvent
from repro.sim.simobject import CHECK_ENV, SimObject, Simulator

from tests.pcie.test_link import build_dma_path


def make_pair(sim):
    master = MasterPort(SimObject(sim, "m"), "port")
    slave = SlavePort(SimObject(sim, "s"), "port")
    master.bind(slave)
    return master, slave


class FakeLinkIface:
    """Just enough link-interface surface for the checker's link rules."""

    full_name = "fake_link.if"

    def __init__(self):
        self.replay_buffer = []
        self.replay_buffer_size = 2
        self.send_seq = 0
        self.fc = CreditLedger(6, 6, 4)


def tlp(seq, addr=0x1000):
    pkt = Packet(MemCmd.WRITE_REQ, addr, 64, data=bytes(64))
    return PciePacket.for_tlp(pkt, seq)


# -- lifecycle ---------------------------------------------------------------


def test_checker_off_by_default(monkeypatch):
    monkeypatch.delenv(CHECK_ENV, raising=False)
    sim = Simulator()
    assert not sim.checker.enabled
    assert sim.checker.violations == []


def test_check_env_enables(monkeypatch):
    monkeypatch.setenv(CHECK_ENV, "on")
    assert Simulator().checker.enabled
    # An explicit knob always beats the environment.
    assert not Simulator(check=False).checker.enabled


def test_check_knob_enables_and_attaches_ring(monkeypatch):
    monkeypatch.delenv(CHECK_ENV, raising=False)
    sim = Simulator(check=True)
    assert sim.checker.enabled
    assert sim.checker._ring in sim.tracer.sinks
    sim.checker.disable()
    assert not sim.checker.enabled
    assert sim.checker._ring is None


def test_components_cache_the_checker():
    sim = Simulator(check=True)
    master, slave = make_pair(sim)
    assert master.checker is sim.checker
    assert slave.checker is sim.checker
    assert sim.eventq.checker is sim.checker


# -- event queue -------------------------------------------------------------


def test_time_monotonic_rule():
    sim = Simulator(check=True)
    sim.checker.record_only = True
    event = CallbackEvent(lambda: None, name="probe")
    sim.checker.on_dispatch(10, event)
    sim.checker.on_dispatch(5, event)
    assert [v.rule for v in sim.checker.violations] == ["eventq.time_monotonic"]


def test_normal_run_is_monotonic_and_clean():
    sim = Simulator(check=True)
    fired = []
    sim.schedule_callback(10, lambda: fired.append(10))
    sim.schedule_callback(5, lambda: fired.append(5))
    sim.run()
    assert fired == [5, 10]
    assert sim.checker.violations == []


# -- timing-port protocol ----------------------------------------------------


def test_new_request_while_retry_owed_violates():
    sim = Simulator(check=True)
    master, slave = make_pair(sim)
    slave.recv_timing_req = lambda pkt: False
    master.recv_req_retry = lambda: None
    first = Packet(MemCmd.READ_REQ, 0x0, 4)
    assert not master.send_timing_req(first)
    with pytest.raises(InvariantViolation) as exc:
        master.send_timing_req(Packet(MemCmd.READ_REQ, 0x40, 4))
    assert exc.value.rule == "port.req_while_retry_owed"
    assert exc.value.component == master.full_name


def test_resending_the_refused_request_is_legal():
    sim = Simulator(check=True)
    master, slave = make_pair(sim)
    answers = [False, True]
    slave.recv_timing_req = lambda pkt: answers.pop(0)
    master.recv_req_retry = lambda: None
    first = Packet(MemCmd.READ_REQ, 0x0, 4)
    assert not master.send_timing_req(first)
    assert master.send_timing_req(first)  # the replay path does this
    assert sim.checker.violations == []


def test_retry_clears_the_pending_refusal():
    sim = Simulator(check=True)
    master, slave = make_pair(sim)
    answers = [False, True]
    slave.recv_timing_req = lambda pkt: answers.pop(0)
    master.recv_req_retry = lambda: None
    assert not master.send_timing_req(Packet(MemCmd.READ_REQ, 0x0, 4))
    slave.send_retry_req()
    # After the retry the master may choose a different packet.
    assert master.send_timing_req(Packet(MemCmd.READ_REQ, 0x40, 4))
    assert sim.checker.violations == []


def test_unrequested_response_violates_conservation():
    sim = Simulator(check=True)
    master, slave = make_pair(sim)
    master.recv_timing_resp = lambda pkt: True
    with pytest.raises(InvariantViolation) as exc:
        slave.send_timing_resp(Packet(MemCmd.READ_RESP, 0, 4))
    assert exc.value.rule == "port.resp_conservation"


def test_matched_response_is_legal_but_a_second_violates():
    sim = Simulator(check=True)
    master, slave = make_pair(sim)
    slave.recv_timing_req = lambda pkt: True
    master.recv_timing_resp = lambda pkt: True
    req = Packet(MemCmd.READ_REQ, 0x10, 4)
    assert master.send_timing_req(req)
    assert slave.send_timing_resp(req.make_response())
    assert sim.checker.violations == []
    with pytest.raises(InvariantViolation) as exc:
        slave.send_timing_resp(req.make_response())
    assert exc.value.rule == "port.resp_conservation"


def test_double_retry_rules_fire_in_both_directions():
    sim = Simulator(check=True)
    sim.checker.record_only = True
    master, slave = make_pair(sim)
    with pytest.raises(PortError):
        slave.send_retry_req()
    with pytest.raises(PortError):
        master.send_retry_resp()
    assert [v.rule for v in sim.checker.violations] == [
        "port.double_retry", "port.double_retry"]


# -- link layer --------------------------------------------------------------


def test_send_seq_must_increase_by_one():
    sim = Simulator(check=True)
    sim.checker.record_only = True
    iface = FakeLinkIface()
    sim.checker.link_tlp_queued(iface, tlp(0))
    sim.checker.link_tlp_queued(iface, tlp(2))  # skipped seq 1
    assert [v.rule for v in sim.checker.violations] == ["link.send_seq"]


def test_replay_buffer_overflow_rule():
    sim = Simulator(check=True)
    sim.checker.record_only = True
    iface = FakeLinkIface()
    iface.replay_buffer = [tlp(0), tlp(1), tlp(2)]  # size is 2
    sim.checker.link_tlp_queued(iface, tlp(0))
    assert "link.replay_buffer_overflow" in [
        v.rule for v in sim.checker.violations]


def test_recv_seq_must_advance_by_one():
    sim = Simulator(check=True)
    sim.checker.record_only = True
    iface = FakeLinkIface()
    sim.checker.link_tlp_delivered(iface, tlp(0))
    sim.checker.link_tlp_delivered(iface, tlp(3))  # skipped 1 and 2
    assert [v.rule for v in sim.checker.violations] == ["link.recv_seq"]


def test_forged_ack_for_unsent_tlp_violates():
    sim = Simulator(check=True)
    link, device, memory = build_dma_path(sim)
    tx = link.downstream_if
    assert tx.send_seq == 0
    with pytest.raises(InvariantViolation) as exc:
        tx.receive_from_link(PciePacket.ack(7))
    assert exc.value.rule == "link.ack_unsent_seq"


def test_replay_deadlock_flagged_at_quiescence():
    sim = Simulator(check=True)
    sim.checker.record_only = True
    link, device, memory = build_dma_path(sim)
    # A TLP stranded in the replay buffer with no replay timer armed can
    # never drain: exactly the wedge the watchdog exists to catch.
    link.downstream_if.replay_buffer.append(tlp(0))
    sim.run()
    assert "link.replay_deadlock" in [v.rule for v in sim.checker.violations]


def test_stuck_input_queue_flagged_at_quiescence():
    sim = Simulator(check=True)
    sim.checker.record_only = True
    link, device, memory = build_dma_path(sim)
    link.downstream_if._in_req.append(Packet(MemCmd.READ_REQ, 0, 4))
    sim.run()
    assert "link.stuck_input_queue" in [v.rule for v in sim.checker.violations]


def test_clean_link_traffic_reports_no_violations():
    sim = Simulator(check=True)
    link, device, memory = build_dma_path(sim)
    for i in range(8):
        device.write(0x80000000 + i * 64, 64)
    sim.run()
    assert len(memory.requests) == 8
    assert sim.checker.violations == []


# -- violation objects -------------------------------------------------------


def test_violation_carries_trace_context():
    sim = Simulator(check=True)
    link, device, memory = build_dma_path(sim)
    device.write(0x80000000, 64)
    sim.run()
    with pytest.raises(InvariantViolation) as exc:
        link.downstream_if.receive_from_link(PciePacket.ack(99))
    # The ring sink captured the exchange that preceded the violation.
    assert exc.value.context
    assert "link.ack_unsent_seq" in str(exc.value)
    assert "last" in str(exc.value)  # the rendered context header


def test_record_only_collects_instead_of_raising():
    sim = Simulator(check=True)
    sim.checker.record_only = True
    link, device, memory = build_dma_path(sim)
    link.downstream_if.receive_from_link(PciePacket.ack(99))
    assert len(sim.checker.violations) == 1
    assert sim.checker.violations[0].rule == "link.ack_unsent_seq"


def test_violation_str_renders_fields():
    v = InvariantViolation(
        rule="demo.rule", component="sys.link", tick=42, detail="boom",
        context=[{"t": 41, "cat": "link", "comp": "sys.link",
                  "ev": "tlp_tx", "seq": 3}],
    )
    text = str(v)
    assert "demo.rule" in text
    assert "sys.link" in text
    assert "tick 42" in text
    assert "boom" in text
    assert "seq" in text
