"""Docstring-coverage contract for the documented-surface paths.

CI runs ``interrogate --fail-under 80`` over the experiment subsystem,
the simulation kernel, and the benchmark harness; this test enforces
the same floor with the stdlib checker so the contract also holds on
machines where interrogate is not installed.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCOPED_PATHS = [
    os.path.join(REPO_ROOT, "src", "repro", "check"),
    os.path.join(REPO_ROOT, "src", "repro", "exp"),
    os.path.join(REPO_ROOT, "src", "repro", "sim"),
    os.path.join(REPO_ROOT, "benchmarks", "harness.py"),
]


def test_docstring_coverage_at_least_80_percent(capsys):
    sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
    try:
        import check_docstrings
    finally:
        sys.path.pop(0)
    status = check_docstrings.main(["--fail-under", "80", *SCOPED_PATHS])
    output = capsys.readouterr().out
    assert status == 0, f"docstring coverage regressed:\n{output}"
