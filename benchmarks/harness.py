"""Benchmark harness: sweep execution, artifact persistence, and a CLI.

Every figure/table reproduction boils down to: build the paper's
validation (or NIC) topology with one knob changed, run ``dd`` (or the
MMIO kernel module), and extract throughput plus link-layer statistics.
The configurations live in :mod:`benchmarks.sweeps`; this module runs
them through the :class:`repro.exp.SweepEngine` (result cache under
``benchmarks/results/.cache``, wall-clock records appended to
``benchmarks/results/BENCH_sweeps.json``) and persists result rows to
``benchmarks/results/<name>.json`` so EXPERIMENTS.md can quote them.

Run one experiment from the command line, fanned out over workers::

    python -m benchmarks.harness fig9b --workers 4

:func:`run_dd` / :func:`run_mmio` remain as direct, traceable one-shot
entry points — they bypass the cache and can attach trace sinks, which
sweep points (pure, cacheable functions) deliberately cannot.
"""

import argparse
import json
import os
import sys
from typing import Dict, Optional, Sequence

from benchmarks import config
from repro.analysis.report import Table, link_replay_stats
from repro.exp import SweepEngine, SweepResult, Sweep
from repro.obs import ChromeTraceSink, JsonlSink, write_stats_json
from repro.sim import ticks
from repro.system.topology import build_nic_system, build_validation_system
from repro.workloads.dd import DdWorkload
from repro.workloads.mmio import MmioReadBench

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Sweep-point results are memoised here, keyed by config hash.
CACHE_DIR = os.path.join(RESULTS_DIR, ".cache")

#: Wall-clock record of every sweep run (see repro.exp.bench).
BENCH_PATH = os.path.join(RESULTS_DIR, "BENCH_sweeps.json")

#: Set REPRO_SWEEP_CACHE=off (or 0/no) to force fresh simulation.
CACHE_ENV = "REPRO_SWEEP_CACHE"


def _cache_enabled() -> bool:
    """Whether the on-disk result cache is active for harness sweeps."""
    return os.environ.get(CACHE_ENV, "").strip().lower() not in (
        "off", "0", "no", "false")


def run_sweep(sweep: Sweep, workers: Optional[int] = None,
              cache: Optional[bool] = None,
              results_dir: Optional[str] = None) -> SweepResult:
    """Run one sweep through the engine with the harness's conventions.

    Args:
        sweep: the sweep to run (usually from :mod:`benchmarks.sweeps`).
        workers: worker processes; None defers to ``REPRO_SWEEP_WORKERS``
            (default serial).
        cache: force the result cache on/off; None consults the
            ``REPRO_SWEEP_CACHE`` environment variable (default on).
        results_dir: override the artifact directory (used by the CLI's
            ``--results-dir``; created if missing).

    Returns:
        The :class:`repro.exp.SweepResult`; its ``results`` mapping is
        byte-identical across worker counts and cache states.
    """
    root = results_dir or RESULTS_DIR
    os.makedirs(root, exist_ok=True)
    use_cache = _cache_enabled() if cache is None else cache
    engine = SweepEngine(
        cache_dir=os.path.join(root, ".cache") if use_cache else None,
        bench_path=os.path.join(root, "BENCH_sweeps.json"),
        workers=workers,
    )
    return engine.run(sweep)


def run_dd(block_bytes: int, startup_overhead: Optional[int] = None,
           trace_path: Optional[str] = None,
           chrome_trace_path: Optional[str] = None,
           stats_path: Optional[str] = None,
           trace_categories: Optional[Sequence[str]] = ("link", "engine"),
           check: Optional[bool] = None,
           **system_kwargs) -> Dict[str, float]:
    """Build the validation system, run one dd block, return metrics.

    When ``trace_path`` / ``chrome_trace_path`` are given, the workload
    (not the boot) is traced and the JSONL / Chrome ``trace_event``
    artifact written there; ``stats_path`` additionally dumps the full
    typed statistics document after the run.  ``check`` arms the
    runtime invariant checker (:mod:`repro.check`) for the whole run,
    boot included; None defers to the ``REPRO_CHECK`` environment
    variable.
    """
    kwargs = dict(config.SYSTEM_DEFAULTS)
    kwargs.update(system_kwargs)
    system = build_validation_system(check=check, **kwargs)
    tracer = system.sim.tracer
    chrome_sink = None
    if trace_categories is not None:
        tracer.categories = frozenset(trace_categories)
    if trace_path is not None:
        tracer.attach(JsonlSink(trace_path, meta={"workload": "dd",
                                                  "block_bytes": block_bytes}))
    if chrome_trace_path is not None:
        chrome_sink = tracer.attach(ChromeTraceSink())
    dd = DdWorkload(
        system.kernel,
        system.disk_driver,
        block_bytes,
        startup_overhead=config.DD_STARTUP if startup_overhead is None else startup_overhead,
    )
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=500_000_000)
    if not process.done:
        raise RuntimeError("dd did not finish — simulation wedged?")
    if chrome_sink is not None:
        chrome_sink.write(chrome_trace_path)
    tracer.close()
    if stats_path is not None:
        write_stats_json(system.sim, stats_path,
                         meta={"workload": "dd", "block_bytes": block_bytes})
    stats = link_replay_stats(system.disk_link)
    sector_mean = system.disk.sector_transfer_ticks.mean
    # Fast-forward engine counters (zero unless the active backend
    # installs a link fast path — see repro.sim.backend).
    fastpath = system.disk_link.fastpath
    return {
        "throughput_gbps": dd.result.throughput_gbps,
        "fastpath_batches": fastpath.batches.value() if fastpath else 0,
        "fastpath_tlps": fastpath.tlps.value() if fastpath else 0,
        "fastpath_standdowns": (fastpath.standdowns.value()
                                if fastpath else 0),
        "transfer_gbps": dd.result.transfer_gbps,
        "replay_fraction": stats["replay_fraction"],
        "fc_stall_ticks": stats["fc_stall_ticks"],
        "timeouts": stats["timeouts"],
        "tlps_sent": stats["tlps_sent"],
        "device_level_gbps": (
            system.disk.sector_size * 8 / ticks.to_ns(sector_mean)
            if sector_mean
            else 0.0
        ),
    }


def run_mmio(rc_latency_ns: int, iterations: int = 50,
             **system_kwargs) -> float:
    """Build the NIC system and measure mean 4B MMIO read latency (ns)."""
    kwargs = dict(config.SYSTEM_DEFAULTS)
    kwargs.update(system_kwargs)
    system = build_nic_system(rc_latency=ticks.from_ns(rc_latency_ns), **kwargs)
    bench = MmioReadBench(system.kernel, system.nic_driver.bar0 + 0x8,
                          iterations=iterations)
    process = system.kernel.spawn("mmio", bench.run())
    system.run()
    if not process.done:
        raise RuntimeError("MMIO bench did not finish")
    return bench.mean_latency_ns


def save_results(name: str, payload: dict,
                 results_dir: Optional[str] = None) -> str:
    """Persist one experiment's data under benchmarks/results/."""
    root = results_dir or RESULTS_DIR
    os.makedirs(root, exist_ok=True)
    path = os.path.join(root, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def table_to_payload(table: Table) -> dict:
    """Flatten an analysis Table into the persisted JSON shape."""
    return {
        "title": table.title,
        "x_label": table.x_label,
        "y_label": table.y_label,
        "series": {s.name: {str(x): s.points[x] for x in s.xs()} for s in table.series},
    }


def profile_point(sweep: Sweep, results_dir: Optional[str] = None) -> str:
    """Run the sweep's first point in-process under cProfile.

    Sweep points normally run in worker processes behind the result
    cache, which hides them from a profiler; this runs one point (the
    sweep's first, a representative configuration) directly, with the
    cache bypassed, and writes the statistics sorted by cumulative time
    to ``<results_dir>/<sweep.name>_profile.txt`` — next to the sweep's
    results artifact, so a profile and the run it explains travel
    together.

    Returns the path of the written profile.
    """
    import cProfile
    import io
    import pstats

    from repro.exp.spec import resolve_runner

    root = results_dir or RESULTS_DIR
    os.makedirs(root, exist_ok=True)
    point = sweep.points[0]
    runner = resolve_runner(point.runner)
    profiler = cProfile.Profile()
    profiler.enable()
    runner(**point.params)
    profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(60)
    stats.sort_stats("tottime").print_stats(30)
    path = os.path.join(root, f"{sweep.name}_profile.txt")
    with open(path, "w") as fh:
        fh.write(f"# cProfile of sweep {sweep.name!r}, point {point.key!r}\n")
        fh.write(f"# runner: {point.runner}  params: {point.params}\n")
        fh.write("# NOTE: cProfile instrumentation inflates wall time ~3x;\n")
        fh.write("# compare shapes, not absolute seconds.\n")
        fh.write(buf.getvalue())
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run one named experiment sweep and persist its raw results.

    Unknown experiment names exit with status 2 and the list of known
    names on stderr (no traceback); the results directory is created if
    missing.
    """
    from benchmarks import sweeps

    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.harness",
        description="Run one paper-figure sweep through the cache-aware "
                    "parallel sweep engine.",
    )
    parser.add_argument("benchmark", nargs="?",
                        help="experiment name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list known experiment names with one-line "
                             "descriptions and exit")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for cache misses "
                             "(default: $REPRO_SWEEP_WORKERS or 1)")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore the result cache and re-simulate")
    parser.add_argument("--check", action="store_true",
                        help="run every point with the runtime invariant "
                             "checker armed (repro.check); checked runs "
                             "cache separately from unchecked ones")
    parser.add_argument("--checkpoint", action="store_true",
                        help="build the sweep in checkpoint mode: shared "
                             "warm-up prefixes are simulated once, "
                             "snapshotted, and every point forks from the "
                             "snapshot (sweeps without a checkpoint mode "
                             "reject this flag)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="simulation backend to run every point on "
                             "(see --list; default: $REPRO_BACKEND or "
                             "hybrid).  Backends are result-identical, so "
                             "the choice does not enter sweep cache keys — "
                             "it is recorded in BENCH_sweeps.json for "
                             "wall-clock forensics only")
    parser.add_argument("--partitions", type=int, default=None, metavar="N",
                        help="ask the partitioned engine to cut the fabric "
                             "into N subtree partitions (requires a "
                             "partitioned backend such as 'parallel'; "
                             "exported as $REPRO_PARTITIONS so sweep "
                             "workers inherit the hint).  Runs that cannot "
                             "engage N partitions fall back to the serial "
                             "drain with identical results")
    parser.add_argument("--results-dir", default=None, metavar="DIR",
                        help=f"artifact directory (default: {RESULTS_DIR})")
    parser.add_argument("--profile", action="store_true",
                        help="instead of the full sweep, run its first "
                             "point in-process under cProfile and write "
                             "sorted stats next to the results artifact")
    args = parser.parse_args(argv)

    if args.backend is not None:
        from repro.sim.backend import BACKEND_ENV, resolve

        try:
            resolve(args.backend)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # Exported (not passed around) so cache-miss worker processes
        # inherit the same engine as the parent.
        os.environ[BACKEND_ENV] = args.backend

    if args.partitions is not None:
        from repro.sim.backend import resolve
        from repro.sim.partition import PARTITIONS_ENV

        if args.partitions < 1:
            print(f"error: --partitions must be >= 1 "
                  f"(got {args.partitions})", file=sys.stderr)
            return 2
        effective = resolve(args.backend)
        if not getattr(effective, "partitioned", False):
            print(f"error: --partitions requires a partitioned backend; "
                  f"{effective.name!r} runs single-process "
                  f"(try --backend parallel)", file=sys.stderr)
            return 2
        # Exported for the same reason as --backend: sweep cache-miss
        # workers must build the same partition plan as the parent.
        os.environ[PARTITIONS_ENV] = str(args.partitions)

    if args.list:
        from repro.sim.backend import backend_names, default_backend_name, resolve

        # One line per registered sweep: name plus the first line of its
        # builder's docstring (the builders double as the documentation).
        width = max(len(name) for name in sweeps.SWEEPS)
        for name in sorted(sweeps.SWEEPS):
            doc = (sweeps.SWEEPS[name].__doc__ or "").strip()
            summary = doc.splitlines()[0] if doc else ""
            print(f"{name:<{width}}  {summary}".rstrip())
        print()
        default = default_backend_name()
        width = max(len(name) for name in backend_names())
        for name in backend_names():
            marker = "*" if name == default else " "
            print(f"backend {marker}{name:<{width}}  "
                  f"{resolve(name).description}".rstrip())
        return 0
    if not args.benchmark:
        parser.print_usage(sys.stderr)
        print("error: no benchmark name given (try --list)", file=sys.stderr)
        return 2
    builder = sweeps.SWEEPS.get(args.benchmark)
    if builder is None:
        known = ", ".join(sorted(sweeps.SWEEPS))
        print(f"error: unknown benchmark {args.benchmark!r}; "
              f"known benchmarks: {known}", file=sys.stderr)
        return 2

    if args.checkpoint:
        import inspect

        if "checkpoint" not in inspect.signature(builder).parameters:
            print(f"error: benchmark {args.benchmark!r} has no checkpoint "
                  f"mode (sweeps with one take a checkpoint= builder "
                  f"argument)", file=sys.stderr)
            return 2
        sweep = builder(checkpoint=True)
    else:
        sweep = builder()
    if args.check:
        # Every point runner accepts a ``check`` kwarg; adding it to the
        # params changes the cache key, so checked results never shadow
        # (or get served from) the unchecked cache entries.  A point's
        # prefix must describe the same machine as the point itself, so
        # the flag reaches the prefix params too.
        for point in sweep.points:
            point.params["check"] = True
            if point.prefix is not None:
                point.prefix["params"]["check"] = True
    if args.profile:
        path = profile_point(sweep, results_dir=args.results_dir)
        print(f"profile: {path}")
        return 0
    result = run_sweep(sweep, workers=args.workers,
                       cache=False if args.fresh else None,
                       results_dir=args.results_dir)
    path = save_results(f"{sweep.name}_sweep", result.results,
                        results_dir=args.results_dir)
    print(result.summary())
    print(f"results: {path}")
    print(f"wall-clock record: "
          f"{os.path.join(args.results_dir or RESULTS_DIR, 'BENCH_sweeps.json')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
