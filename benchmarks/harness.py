"""Benchmark harness helpers.

Every figure/table reproduction boils down to: build the paper's
validation (or NIC) topology with one knob changed, run ``dd`` (or the
MMIO kernel module), and extract throughput plus link-layer statistics.
These helpers do that and persist each experiment's rows to
``benchmarks/results/<name>.json`` so EXPERIMENTS.md can quote them.
"""

import json
import os
from typing import Dict, Optional, Sequence

from benchmarks import config
from repro.analysis.report import Table, link_replay_stats
from repro.obs import ChromeTraceSink, JsonlSink, write_stats_json
from repro.sim import ticks
from repro.system.topology import build_nic_system, build_validation_system
from repro.workloads.dd import DdWorkload
from repro.workloads.mmio import MmioReadBench

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_dd(block_bytes: int, startup_overhead: Optional[int] = None,
           trace_path: Optional[str] = None,
           chrome_trace_path: Optional[str] = None,
           stats_path: Optional[str] = None,
           trace_categories: Optional[Sequence[str]] = ("link", "engine"),
           **system_kwargs) -> Dict[str, float]:
    """Build the validation system, run one dd block, return metrics.

    When ``trace_path`` / ``chrome_trace_path`` are given, the workload
    (not the boot) is traced and the JSONL / Chrome ``trace_event``
    artifact written there; ``stats_path`` additionally dumps the full
    typed statistics document after the run.
    """
    kwargs = dict(config.SYSTEM_DEFAULTS)
    kwargs.update(system_kwargs)
    system = build_validation_system(**kwargs)
    tracer = system.sim.tracer
    chrome_sink = None
    if trace_categories is not None:
        tracer.categories = frozenset(trace_categories)
    if trace_path is not None:
        tracer.attach(JsonlSink(trace_path, meta={"workload": "dd",
                                                  "block_bytes": block_bytes}))
    if chrome_trace_path is not None:
        chrome_sink = tracer.attach(ChromeTraceSink())
    dd = DdWorkload(
        system.kernel,
        system.disk_driver,
        block_bytes,
        startup_overhead=config.DD_STARTUP if startup_overhead is None else startup_overhead,
    )
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=500_000_000)
    if not process.done:
        raise RuntimeError("dd did not finish — simulation wedged?")
    if chrome_sink is not None:
        chrome_sink.write(chrome_trace_path)
    tracer.close()
    if stats_path is not None:
        write_stats_json(system.sim, stats_path,
                         meta={"workload": "dd", "block_bytes": block_bytes})
    stats = link_replay_stats(system.disk_link)
    sector_mean = system.disk.sector_transfer_ticks.mean
    return {
        "throughput_gbps": dd.result.throughput_gbps,
        "transfer_gbps": dd.result.transfer_gbps,
        "replay_fraction": stats["replay_fraction"],
        "timeouts": stats["timeouts"],
        "tlps_sent": stats["tlps_sent"],
        "device_level_gbps": (
            system.disk.sector_size * 8 / ticks.to_ns(sector_mean)
            if sector_mean
            else 0.0
        ),
    }


def run_mmio(rc_latency_ns: int, iterations: int = 50,
             **system_kwargs) -> float:
    """Build the NIC system and measure mean 4B MMIO read latency (ns)."""
    kwargs = dict(config.SYSTEM_DEFAULTS)
    kwargs.update(system_kwargs)
    system = build_nic_system(rc_latency=ticks.from_ns(rc_latency_ns), **kwargs)
    bench = MmioReadBench(system.kernel, system.nic_driver.bar0 + 0x8,
                          iterations=iterations)
    process = system.kernel.spawn("mmio", bench.run())
    system.run()
    if not process.done:
        raise RuntimeError("MMIO bench did not finish")
    return bench.mean_latency_ns


def save_results(name: str, payload: dict) -> str:
    """Persist one experiment's data under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def table_to_payload(table: Table) -> dict:
    return {
        "title": table.title,
        "x_label": table.x_label,
        "y_label": table.y_label,
        "series": {s.name: {str(x): s.points[x] for x in s.xs()} for s in table.series},
    }
