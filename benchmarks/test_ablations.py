"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the modelling decisions the
paper discusses qualitatively:

* **posted writes** — the paper's model does not support them and
  blames part of its bandwidth gap on that ("once a sector is
  transmitted ... responses for all gem5 write packets need to be
  obtained before the next sector can be transmitted.  This is unlike
  the physical PCI-Express protocol");
* **ACK policy** — per-TLP ACKs versus ACK-timer coalescing;
* **datapath scope** — per-port versus single shared internal datapath
  in the root complex and switch;
* **generation sweep** — Gen 1/2/3 at fixed width;
* **cut-through-like switching** — the paper models store-and-forward
  and cites 150 ns market-typical switches; dropping the latency toward
  zero bounds what cut-through could buy;
* **classic PCI** — Section II background quantified: the shared
  33 MHz PCI bus versus the PCI-Express fabric on the same workload.
"""

import pytest

from benchmarks import sweeps
from benchmarks.harness import run_sweep, save_results


@pytest.fixture(scope="module")
def ablations():
    result = run_sweep(sweeps.ablations_sweep())
    print("\n" + result.summary())
    rows = dict(result.results)
    print("\n# Ablations (dd, 64MB block, Gen2 x4 root / x1 device unless noted)")
    for name, r in rows.items():
        replay = r.get("replay_fraction")
        note = f" (replay {100 * replay:.1f}%)" if replay is not None else ""
        print(f"  {name:>20}: {r['throughput_gbps']:.3f} Gbps{note}")
    save_results("ablations",
                 {k: v for k, v in rows.items() if k != "classic_pci"})
    save_results("ablation_classic_pci", {
        "classic_pci_gbps": rows["classic_pci"]["throughput_gbps"],
        "pcie_gen2_x1_gbps": rows["baseline"]["throughput_gbps"],
    })
    return rows


def test_ablations_generate(benchmark, ablations):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(ablations) == 8


def test_posted_writes_raise_throughput(benchmark, ablations):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Removing the response barrier can only help.
    assert (
        ablations["posted_writes"]["throughput_gbps"]
        > ablations["baseline"]["throughput_gbps"]
    )


def test_ack_coalescing_close_to_immediate_at_x1(benchmark, ablations):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # On the uncongested x1 device link the ACK policy barely matters.
    assert ablations["ack_timer"]["throughput_gbps"] == pytest.approx(
        ablations["baseline"]["throughput_gbps"], rel=0.15
    )


def test_generation_scaling(benchmark, ablations):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    g1 = ablations["gen1"]["throughput_gbps"]
    g2 = ablations["baseline"]["throughput_gbps"]
    g3 = ablations["gen3"]["throughput_gbps"]
    assert g1 < g2 < g3
    # Gen1 halves the lane rate of Gen2; software costs keep the dd
    # ratio under the raw 2x.
    assert 1.3 < g2 / g1 <= 2.05


def test_cut_through_bound_is_modest(benchmark, ablations):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Zeroing the switch latency entirely (an upper bound on what
    # cut-through could save) buys only a few percent, echoing the
    # paper's switch-latency result.
    gain = (
        ablations["zero_switch_latency"]["throughput_gbps"]
        / ablations["baseline"]["throughput_gbps"]
    )
    assert 1.0 <= gain < 1.15


def test_classic_pci_baseline_far_below_pcie(benchmark, ablations):
    """Section II background, quantified: the shared 33 MHz PCI bus
    versus the PCI-Express fabric on the same workload."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    classic = ablations["classic_pci"]["throughput_gbps"]
    print(f"  classic 33 MHz PCI bus: {classic:.3f} Gbps")
    assert ablations["baseline"]["throughput_gbps"] > 2 * classic
