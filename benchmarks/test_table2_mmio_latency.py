"""Table II: root complex latency vs 4-byte MMIO read access time.

A gem5 NIC model hangs directly off a root port; a kernel module times a
4-byte MMIO read of a NIC register while the root-complex latency sweeps
50/75/100/125/150 ns.  The paper measures 318/358/398/438/517 ns —
roughly +40 ns of access time per +25 ns of root-complex latency,
because the request *and* the response both cross the root complex.
"""

import pytest

from benchmarks import config, sweeps
from benchmarks.harness import run_sweep, save_results

PAPER_TABLE2 = {50: 318, 75: 358, 100: 398, 125: 438, 150: 517}


@pytest.fixture(scope="module")
def table2():
    result = run_sweep(sweeps.table2_sweep())
    print("\n" + result.summary())
    rows = {ns: result.results[f"rc{ns}"]["mmio_read_ns"]
            for ns in config.RC_LATENCIES_NS}
    print("\n# Table II: root complex latency vs MMIO read access time (ns)")
    print(f"{'rc_latency':>11} {'measured':>9} {'paper':>7}")
    for ns in config.RC_LATENCIES_NS:
        print(f"{ns:>11} {rows[ns]:>9.0f} {PAPER_TABLE2[ns]:>7}")
    save_results("table2_mmio_latency",
                 {"measured_ns": rows, "paper_ns": PAPER_TABLE2})
    return rows


def test_table2_generates_all_points(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(table2) == set(config.RC_LATENCIES_NS)


def test_latency_increases_monotonically(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    values = [table2[ns] for ns in sorted(table2)]
    assert values == sorted(values)


def test_slope_reflects_two_rc_crossings(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Request + response each cross the RC: every 25 ns of RC latency
    # must add at least 50 ns of access time (the paper sees ~40 ns per
    # 25 ns, i.e. ~1.6 crossings' worth; exact pipelining differs).
    deltas = [
        table2[b] - table2[a]
        for a, b in zip(sorted(table2), sorted(table2)[1:])
    ]
    for delta in deltas:
        assert 25 <= delta <= 80, f"step of {delta:.0f} ns per 25 ns RC step"


def test_absolute_latency_same_order_as_paper(benchmark, table2):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for ns, measured in table2.items():
        paper = PAPER_TABLE2[ns]
        assert 0.5 * paper < measured < 2.0 * paper
