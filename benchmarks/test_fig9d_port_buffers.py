"""Figure 9(d): dd on an x8 fabric (replay buffer restored to 4) with
switch/root port buffers of 16/20/24/28 packets.

Paper's observations:

* growing the buffers from 16 to 20 gives a large throughput step;
  24 and 28 add little (saturation);
* the timeout rate falls only gradually (27 % → 20 % → 0 % → 0 %): "the
  throughput increase mainly comes from the increased space in the root
  complex and switch port buffers as opposed to a reduction in the
  timeouts";
* the saturated value is close to the x8 replay-buffer-2 point of
  Figure 9(c).

With per-class credit flow control the port buffers are advertised as
credits, so "more buffering" now means "more credits in flight" rather
than "fewer drops".  Nothing is ever dropped: throughput sits at the
switch drain rate for every size, and the figure's relief trend shows
up as a monotone fall in credit-stall ticks as the buffer grows.  The
paper's own reading — "the throughput increase mainly comes from the
increased space in the ... buffers as opposed to a reduction in the
timeouts" — is exactly the buffer-space mechanism the stall metric
isolates once replay storms are out of the picture.
"""

import pytest

from benchmarks import config, sweeps
from benchmarks.harness import run_sweep, save_results


@pytest.fixture(scope="module")
def fig9d():
    result = run_sweep(sweeps.fig9d_sweep())
    print("\n" + result.summary())
    rows = {buf: result.results[f"buf{buf}"]
            for buf in config.PORT_BUFFER_SIZES}
    rows["rb2_reference"] = result.results["rb2_reference"]
    print("\n# Fig 9(d): x8, port buffer sweep (block 128MB)")
    print(f"{'buf':>4} {'Gbps':>7} {'replay%':>8} {'timeouts':>9} "
          f"{'stall Mticks':>12}")
    for buf in config.PORT_BUFFER_SIZES:
        r = rows[buf]
        print(f"{buf:>4} {r['throughput_gbps']:>7.3f} "
              f"{100 * r['replay_fraction']:>8.1f} {r['timeouts']:>9} "
              f"{r['fc_stall_ticks'] / 1e6:>12.1f}")
    save_results("fig9d_port_buffers", {str(k): v for k, v in rows.items()})
    return rows


def test_fig9d_generates_all_points(benchmark, fig9d):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(buf in fig9d for buf in config.PORT_BUFFER_SIZES)


def test_throughput_never_degrades_with_more_buffering(benchmark, fig9d):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    values = [fig9d[buf]["throughput_gbps"] for buf in config.PORT_BUFFER_SIZES]
    for a, b in zip(values, values[1:]):
        assert b >= a * 0.99


def test_credit_stalls_shrink_with_buffering(benchmark, fig9d):
    """The paper's congestion-relief trend, in credit terms: every
    extra port-buffer slot is an extra advertised credit, so growing
    the buffers monotonically shrinks the time the transmitter spends
    starved — while replays stay at zero because nothing is dropped."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    stalls = [fig9d[buf]["fc_stall_ticks"] for buf in config.PORT_BUFFER_SIZES]
    assert stalls[0] > 0  # congested at 16
    for a, b in zip(stalls, stalls[1:]):
        assert b <= a + 1e-9
    assert stalls[-1] < stalls[0]
    for buf in config.PORT_BUFFER_SIZES:
        assert fig9d[buf]["replay_fraction"] < 0.001
        assert fig9d[buf]["timeouts"] == 0


def test_saturated_value_close_to_rb2_reference(benchmark, fig9d):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    saturated = fig9d[28]["throughput_gbps"]
    reference = fig9d["rb2_reference"]["throughput_gbps"]
    assert saturated == pytest.approx(reference, rel=0.10)
