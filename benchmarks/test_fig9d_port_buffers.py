"""Figure 9(d): dd on an x8 fabric (replay buffer restored to 4) with
switch/root port buffers of 16/20/24/28 packets.

Paper's observations:

* growing the buffers from 16 to 20 gives a large throughput step;
  24 and 28 add little (saturation);
* the timeout rate falls only gradually (27 % → 20 % → 0 % → 0 %): "the
  throughput increase mainly comes from the increased space in the root
  complex and switch port buffers as opposed to a reduction in the
  timeouts";
* the saturated value is close to the x8 replay-buffer-2 point of
  Figure 9(c).
"""

import pytest

from benchmarks import config, sweeps
from benchmarks.harness import run_sweep, save_results


@pytest.fixture(scope="module")
def fig9d():
    result = run_sweep(sweeps.fig9d_sweep())
    print("\n" + result.summary())
    rows = {buf: result.results[f"buf{buf}"]
            for buf in config.PORT_BUFFER_SIZES}
    rows["rb2_reference"] = result.results["rb2_reference"]
    print("\n# Fig 9(d): x8, port buffer sweep (block 128MB)")
    print(f"{'buf':>4} {'Gbps':>7} {'replay%':>8} {'timeouts':>9}")
    for buf in config.PORT_BUFFER_SIZES:
        r = rows[buf]
        print(f"{buf:>4} {r['throughput_gbps']:>7.3f} "
              f"{100 * r['replay_fraction']:>8.1f} {r['timeouts']:>9}")
    save_results("fig9d_port_buffers", {str(k): v for k, v in rows.items()})
    return rows


def test_fig9d_generates_all_points(benchmark, fig9d):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(buf in fig9d for buf in config.PORT_BUFFER_SIZES)


def test_throughput_never_degrades_with_more_buffering(benchmark, fig9d):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    values = [fig9d[buf]["throughput_gbps"] for buf in config.PORT_BUFFER_SIZES]
    for a, b in zip(values, values[1:]):
        assert b >= a * 0.99


def test_replays_shrink_with_buffering(benchmark, fig9d):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fractions = [fig9d[buf]["replay_fraction"] for buf in config.PORT_BUFFER_SIZES]
    assert fractions[0] > 0.02  # congested at 16
    for a, b in zip(fractions, fractions[1:]):
        assert b <= a + 1e-9
    assert fractions[-1] < fractions[0]


def test_saturated_value_close_to_rb2_reference(benchmark, fig9d):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    saturated = fig9d[28]["throughput_gbps"]
    reference = fig9d["rb2_reference"]["throughput_gbps"]
    assert saturated == pytest.approx(reference, rel=0.10)
