"""Partitioned-engine scaling benchmark (``BENCH_partition.json``).

Runs one fixed multi-flow workload on the depth-4 MSI chain fabric
three ways — single-process ``hybrid``, and the ``parallel`` backend
cut into 2 and 4 partitions — and records the wall clocks plus the
measured speedups.  Every partitioned run asserts that the engine
actually engaged (a silent fallback would measure the serial drain
twice) and that its statistics document matches the serial run's, so
the numbers are always for *correct* parallel runs.

Honesty note: the conservative sync protocol runs lockstep rounds over
pipes, and the per-round window is one boundary-link flight time — a
few microseconds of simulated time.  For pure-Python partitions whose
per-round compute is small, coordination overhead can eat the
parallelism; parity (speedup around 1.0) is an acceptable, recorded
outcome.  The committed floor only rejects catastrophic sync
regressions, not imperfect scaling.

The artifact mirrors :mod:`benchmarks.core_perf`: ``before``/``after``
phases, calibration-normalised wall clocks, thresholds enforced by
``tools/check_bench_regression.py``::

    python -m benchmarks.partition_perf --phase after --quick
    python tools/check_bench_regression.py \
        benchmarks/results/BENCH_partition.json \
        benchmarks/partition_perf_thresholds.json
"""

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from benchmarks.core_perf import calibration_workload, load_bench

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_PARTITION_PATH = os.path.join(RESULTS_DIR, "BENCH_partition.json")

SCHEMA = "repro-bench-partition/1"

#: The benchmark fabric/workload: four dd readers on the depth-4 MSI
#: chain, one per switch tier, so 2- and 4-partition cuts both split
#: live traffic.
BENCH_DEPTH = 4
BENCH_REQUESTS = 8
BENCH_BLOCK_BYTES = 16384


def _bench_scenario():
    """The fixed scenario every configuration of this benchmark runs."""
    from repro.system.spec import deep_hierarchy_spec
    from repro.workloads.scenarios import Scenario
    from repro.workloads.traffic import FlowSpec

    topo = deep_hierarchy_spec(BENCH_DEPTH, 1, enable_msi=True)
    flows = [
        FlowSpec(name=f"r{i}", kind="dd_read", device=f"sw{i + 1}_disk0",
                 requests=BENCH_REQUESTS,
                 bytes_per_request=BENCH_BLOCK_BYTES, seed=7 + i)
        for i in range(BENCH_DEPTH)
    ]
    return Scenario(name="partition_bench", topology=topo, flows=flows)


def _run_once(partitions: Optional[int]) -> Dict[str, Any]:
    """One timed run; ``partitions=None`` selects single-process hybrid."""
    import repro.sim.partition as partition_mod
    from repro.workloads.scenarios import run_scenario

    saved = {name: os.environ.get(name)
             for name in ("REPRO_BACKEND", partition_mod.PARTITIONS_ENV)}
    engagements: List[int] = []
    real_run = partition_mod.PartitionEngine.run

    def probe(self, max_events):
        engagements.append(self.nparts)
        return real_run(self, max_events)

    partition_mod.PartitionEngine.run = probe
    try:
        if partitions is None:
            os.environ["REPRO_BACKEND"] = "hybrid"
            os.environ.pop(partition_mod.PARTITIONS_ENV, None)
        else:
            os.environ["REPRO_BACKEND"] = "parallel"
            os.environ[partition_mod.PARTITIONS_ENV] = str(partitions)
        start = time.perf_counter()
        system, engine = run_scenario(_bench_scenario())
        wall = time.perf_counter() - start
    finally:
        partition_mod.PartitionEngine.run = real_run
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    if not engine.completed:
        raise RuntimeError("partition benchmark scenario did not finish")
    if partitions is None:
        if engagements:
            raise RuntimeError("hybrid baseline engaged the partition "
                               "engine — benchmark is mislabeled")
    elif engagements != [partitions]:
        raise RuntimeError(
            f"parallel run did not engage {partitions} partitions "
            f"(engagements: {engagements}) — wall clock would be "
            f"measuring the serial fallback")
    stats = json.dumps(system.sim.dump_stats(), sort_keys=True)
    return {"wall_s": round(wall, 4), "stats": stats}


def bench_partitions(best_of: int = 3) -> Dict[str, Any]:
    """Best-of-N wall clocks for serial, 2- and 4-partition runs."""
    results: Dict[str, Any] = {}
    baseline_stats = None
    for label, partitions in (("serial", None), ("p2", 2), ("p4", 4)):
        runs: List[float] = []
        stats = None
        for __ in range(best_of):
            out = _run_once(partitions)
            runs.append(out["wall_s"])
            stats = out["stats"]
        if baseline_stats is None:
            baseline_stats = stats
        elif stats != baseline_stats:
            raise RuntimeError(
                f"{label} run diverged from the serial statistics — "
                f"refusing to record wall clocks for an incorrect run")
        results[label] = {"wall_s": min(runs), "runs_s": runs}
    return results


def run_suite(quick: bool = False) -> Dict[str, Any]:
    """Run the benchmark; return one phase block for the artifact."""
    calib = min(calibration_workload() for __ in range(2 if quick else 3))
    marks = bench_partitions(best_of=2 if quick else 3)
    serial = marks["serial"]["wall_s"]
    block: Dict[str, Any] = {
        "calibration_s": round(calib, 4),
        "partition_serial_wall_s": serial,
        "partition_serial_runs_s": marks["serial"]["runs_s"],
        "partition_p2_wall_s": marks["p2"]["wall_s"],
        "partition_p2_runs_s": marks["p2"]["runs_s"],
        "partition_p4_wall_s": marks["p4"]["wall_s"],
        "partition_p4_runs_s": marks["p4"]["runs_s"],
        # Machine-normalised serial wall clock (ceiling in thresholds).
        "partition_serial_norm": round(serial / calib, 3),
        # Honest speedups: >1 means the cut fabric ran faster than the
        # single process; around 1 means sync overhead ate the
        # parallelism (recorded, acceptable); the committed floor only
        # rejects catastrophic sync-protocol regressions.
        "partition_speedup_p2": round(serial / marks["p2"]["wall_s"], 3),
        "partition_speedup_p4": round(serial / marks["p4"]["wall_s"], 3),
        "python": platform.python_version(),
    }
    return block


def write_bench(phase_block: Dict[str, Any], phase: str,
                path: str = BENCH_PARTITION_PATH) -> Dict[str, Any]:
    """Merge one phase into the artifact at ``path`` and rewrite it."""
    doc = load_bench(path)
    doc["schema"] = SCHEMA
    doc[phase] = phase_block
    doc["timestamp"] = round(time.time(), 3)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the suite and merge one phase block into the artifact."""
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.partition_perf",
        description="Partitioned-engine scaling benchmark.")
    parser.add_argument("--phase", choices=("before", "after"),
                        default="after",
                        help="which block of BENCH_partition.json to "
                             "write (default: after)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats (CI)")
    parser.add_argument("--output", default=BENCH_PARTITION_PATH,
                        metavar="PATH",
                        help=f"artifact path (default: "
                             f"{BENCH_PARTITION_PATH})")
    args = parser.parse_args(argv)

    block = run_suite(quick=args.quick)
    write_bench(block, args.phase, args.output)
    print(json.dumps({k: v for k, v in block.items()
                      if not k.endswith("runs_s")},
                     indent=2, sort_keys=True))
    print(f"wrote {args.phase!r} phase: {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
