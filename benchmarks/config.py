"""Shared benchmark configuration.

The paper's evaluation transfers single ``dd`` blocks of 64–512 MB.
Simulating half a gigabyte packet-by-packet in Python is pointless
burn — throughput depends on block size only through the amortisation
of fixed software costs — so the harness scales both the block sizes
and the fixed startup cost down by :data:`SCALE` (the curve shape is
unchanged; see ``repro.workloads.dd``).  Reported block-size labels stay
in the paper's units.

All simulated-system defaults live in :data:`SYSTEM_DEFAULTS` so the
calibration is recorded in exactly one place.
"""

from repro.sim import ticks

# Block sizes are divided by this factor relative to the paper's.
SCALE = 64

#: Paper block sizes (labels) -> simulated bytes.
BLOCK_SIZES = {
    "64MB": (64 << 20) // SCALE,
    "128MB": (128 << 20) // SCALE,
    "256MB": (256 << 20) // SCALE,
    "512MB": (512 << 20) // SCALE,
}

#: dd's fixed startup cost on the paper's machine, scaled with the
#: block size so amortisation matches (≈ 29 ms unscaled).
DD_STARTUP = ticks.from_us(29_000 // SCALE)

#: The physical reference uses the same scaled startup cost.
PHYS_STARTUP = DD_STARTUP

SYSTEM_DEFAULTS = dict(
    service_interval=ticks.from_ns(42),
    ack_policy="immediate",
    datapath_scope="port",
)

# Sweep points straight from the paper.
SWITCH_LATENCIES_NS = (50, 100, 150)
LINK_WIDTHS = (1, 2, 4, 8)
REPLAY_BUFFER_SIZES = (1, 2, 3, 4)
PORT_BUFFER_SIZES = (16, 20, 24, 28)
RC_LATENCIES_NS = (50, 75, 100, 125, 150)
