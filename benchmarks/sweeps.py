"""Sweep definitions for every paper figure/table reproduction.

One builder per experiment, each returning a :class:`repro.exp.Sweep`
whose points carry only canonical-JSON-safe parameters (so they cache
and parallelise; see :mod:`repro.exp.spec`).  The benchmark test files
and the ``python -m benchmarks.harness`` CLI both consume these, which
keeps the set of simulated configurations defined in exactly one place.

Point keys are stable, human-readable labels (``"128MB/x8"``,
``"rc100"``) — they are the merge keys of the persisted results, so
renaming one invalidates nothing in the cache but does change the
result document.
"""

from benchmarks import config
from repro.exp import Sweep
from repro.system.spec import deep_hierarchy_spec
from repro.workloads.scenarios import SCENARIOS, fanout_contention, np_storm

#: Dotted runner paths (see repro.exp.points for the implementations).
DD = "repro.exp.points:dd_point"
DD_PREFIX = "repro.exp.points:dd_prefix"
MMIO = "repro.exp.points:mmio_point"
CLASSIC_PCI = "repro.exp.points:classic_pci_point"
STRESS = "repro.exp.points:stress_point"
SCENARIO = "repro.exp.points:scenario_point"

#: Fig. 9(b) sweeps the paper's smallest and a mid-size block.
FIG9B_BLOCKS = ("64MB", "256MB")

#: Fig. 9(c)/(d) and the ablations use one mid/low block size.
FIG9CD_BLOCK = "128MB"
ABLATION_BLOCK = "64MB"


def _dd_params(block_label, **overrides):
    """Calibrated dd-point parameters for one paper block size."""
    params = dict(config.SYSTEM_DEFAULTS)
    params["block_bytes"] = config.BLOCK_SIZES[block_label]
    params["startup_overhead"] = config.DD_STARTUP
    params.update(overrides)
    return params


def fig9a_sweep() -> Sweep:
    """Fig. 9(a): block size × switch latency (50/100/150 ns)."""
    sweep = Sweep("fig9a")
    for label in config.BLOCK_SIZES:
        for ns in config.SWITCH_LATENCIES_NS:
            sweep.add(f"{label}/L{ns}", DD,
                      **_dd_params(label, switch_latency_ns=ns))
    return sweep


#: Warm-up for checkpoint-mode sweeps: one dd block per prefix.  fig9b
#: warms with a full 64MB-class block — the warm-up is then comparable
#: to a measured point, which is exactly the regime prefix sharing is
#: for (the engine pays it once per link width instead of once per
#: point).  The deep-hierarchy grid warms with its own short block.
CHECKPOINT_WARM_BLOCKS = 1


def _dd_prefix(warm_block_bytes, **system_params):
    """A dd_prefix declaration over one warm-up block, for one machine."""
    params = dict(system_params)
    params["warm_blocks"] = CHECKPOINT_WARM_BLOCKS
    params["warm_block_bytes"] = warm_block_bytes
    return {"runner": DD_PREFIX, "params": params}


def fig9b_sweep(checkpoint: bool = False) -> Sweep:
    """Fig. 9(b): link width x1/x2/x4/x8, all links swept together.

    With ``checkpoint=True`` every point runs a 64MB-class warm-up dd
    before the measured block and declares a shared prefix per link
    width: the engine simulates the warm-up once per width, checkpoints
    it, and forks both block sizes from the snapshot.
    """
    warm_bytes = config.BLOCK_SIZES["64MB"]
    sweep = Sweep("fig9b")
    for label in FIG9B_BLOCKS:
        for width in config.LINK_WIDTHS:
            system = dict(config.SYSTEM_DEFAULTS)
            system.update(root_link_width=width, device_link_width=width)
            params = _dd_params(label, root_link_width=width,
                                device_link_width=width)
            prefix = None
            if checkpoint:
                params["warm_blocks"] = CHECKPOINT_WARM_BLOCKS
                params["warm_block_bytes"] = warm_bytes
                prefix = _dd_prefix(warm_bytes, **system)
            sweep.add(f"{label}/x{width}", DD, prefix=prefix, **params)
    return sweep


def fig9c_sweep() -> Sweep:
    """Fig. 9(c): x8 fabric, replay-buffer size 1/2/3/4."""
    sweep = Sweep("fig9c")
    for rb in config.REPLAY_BUFFER_SIZES:
        sweep.add(f"rb{rb}", DD,
                  **_dd_params(FIG9CD_BLOCK, root_link_width=8,
                               device_link_width=8, replay_buffer_size=rb))
    return sweep


def fig9d_sweep() -> Sweep:
    """Fig. 9(d): x8 fabric, port buffers 16/20/24/28 (+rb2 reference)."""
    sweep = Sweep("fig9d")
    for buf in config.PORT_BUFFER_SIZES:
        sweep.add(f"buf{buf}", DD,
                  **_dd_params(FIG9CD_BLOCK, root_link_width=8,
                               device_link_width=8, buffer_size=buf))
    sweep.add("rb2_reference", DD,
              **_dd_params(FIG9CD_BLOCK, root_link_width=8,
                           device_link_width=8, replay_buffer_size=2))
    return sweep


def table2_sweep() -> Sweep:
    """Table II: root-complex latency vs 4-byte MMIO read time."""
    sweep = Sweep("table2")
    for ns in config.RC_LATENCIES_NS:
        params = dict(config.SYSTEM_DEFAULTS)
        sweep.add(f"rc{ns}", MMIO, rc_latency_ns=ns, **params)
    return sweep


def ablations_sweep() -> Sweep:
    """DESIGN.md's modelling-decision ablations (not paper figures)."""
    sweep = Sweep("ablations")
    sweep.add("baseline", DD, **_dd_params(ABLATION_BLOCK))
    sweep.add("posted_writes", DD,
              **_dd_params(ABLATION_BLOCK, posted_writes=True))
    sweep.add("ack_timer", DD, **_dd_params(ABLATION_BLOCK, ack_policy="timer"))
    sweep.add("engine_datapath", DD,
              **_dd_params(ABLATION_BLOCK, datapath_scope="engine"))
    sweep.add("gen1", DD, **_dd_params(ABLATION_BLOCK, gen="GEN1"))
    sweep.add("gen3", DD, **_dd_params(ABLATION_BLOCK, gen="GEN3"))
    sweep.add("zero_switch_latency", DD,
              **_dd_params(ABLATION_BLOCK, switch_latency_ns=0))
    sweep.add("classic_pci", CLASSIC_PCI,
              block_bytes=config.BLOCK_SIZES[ABLATION_BLOCK],
              startup_overhead=config.DD_STARTUP)
    return sweep


#: Stress-campaign grid (see stress_sweep): deliberately includes the
#: degenerate single-entry replay buffer and input queue, where every
#: recovery corner (source throttling + NAK + timeout) is exercised.
STRESS_ERROR_RATES = (0.0, 0.02, 0.1)
STRESS_DLLP_ERROR_RATES = (0.0, 0.1)
STRESS_REPLAY_BUFFERS = (1, 2, 4)
STRESS_INPUT_QUEUES = (1, 2)

#: One small dd block per stress point keeps the 36-point grid (38 with
#: the multi-flow and credit-starvation points) cheap while still
#: moving enough TLPs (~1k) to hit every recovery path.
STRESS_BLOCK_BYTES = 64 * 1024


def stress_sweep() -> Sweep:
    """Fault-injection campaign: error rates × link-layer buffer sizes.

    Every point runs ``dd`` under the runtime invariant checker in
    record mode (``repro.exp.points:stress_point``); the campaign
    passes when every configuration completes the transfer with zero
    protocol-invariant violations.
    """
    sweep = Sweep("stress")
    for er in STRESS_ERROR_RATES:
        for dr in STRESS_DLLP_ERROR_RATES:
            for rb in STRESS_REPLAY_BUFFERS:
                for iq in STRESS_INPUT_QUEUES:
                    params = dict(config.SYSTEM_DEFAULTS)
                    sweep.add(
                        f"er{er}/dllp{dr}/rb{rb}/iq{iq}", STRESS,
                        block_bytes=STRESS_BLOCK_BYTES,
                        error_rate=er, dllp_error_rate=dr,
                        replay_buffer_size=rb, input_queue_size=iq,
                        **params,
                    )
    # The 37th point: a *multi-flow* scenario under fault injection on
    # the shared uplink, so the campaign also gates concurrent-initiator
    # recovery (checker armed explicitly — this sweep runs unchecked
    # points through the same grid gate).
    sweep.add(
        "multiflow/er0.02", SCENARIO,
        scenario=fanout_contention(fanout=2, requests=2, block_bytes=8192,
                                   error_rate=0.02).to_dict(),
        check=True,
    )
    # The 38th point: the credit-starvation regression.  Unthrottled
    # concurrent dd writers at the disk-default DMA depth — the exact
    # configuration that livelocked under the single shared buffer pool
    # (retired known deviation #4) — must complete checker-armed, which
    # also arms the per-class credit-conservation invariants.
    sweep.add(
        "np_storm/unpinned", SCENARIO,
        scenario=np_storm(requests=2).to_dict(),
        check=True,
    )
    return sweep


#: Deep-hierarchy exploration grid: switch-spine depth × devices per
#: switch.  The deepest point (d4/f8) is a 32-device fabric.
DEEP_HIERARCHY_DEPTHS = (1, 2, 3, 4)
DEEP_HIERARCHY_FANOUTS = (1, 2, 4, 8)

#: One small dd block per deep-hierarchy point: the experiment measures
#: fabric traversal cost, not sustained bandwidth, so a short transfer
#: over the 16-point grid is enough.
DEEP_HIERARCHY_BLOCK_BYTES = 64 * 1024


def deep_hierarchy_sweep(checkpoint: bool = False) -> Sweep:
    """Topology exploration: dd throughput vs switch depth and fan-out.

    Each point builds a :func:`repro.system.spec.deep_hierarchy_spec`
    machine — a spine of ``depth`` switches carrying ``fanout`` devices
    each — and runs ``dd`` against the *deepest* disk, so throughput
    decays with every store-and-forward hop the fabric adds.  The full
    serialised spec travels in the point parameters: the result cache
    keys on the exact machine, and the results artifact names it.

    With ``checkpoint=True`` every point warms its fabric with the
    standard warm-up dd and forks from a per-topology checkpoint (each
    grid cell is a distinct machine, so no snapshot is shared here —
    the mode instead exercises restore across all sixteen fabrics).
    """
    sweep = Sweep("deep_hierarchy")
    for depth in DEEP_HIERARCHY_DEPTHS:
        for fanout in DEEP_HIERARCHY_FANOUTS:
            spec = deep_hierarchy_spec(depth, fanout)
            device = f"sw{depth}_disk{fanout - 1}"
            params = dict(
                block_bytes=DEEP_HIERARCHY_BLOCK_BYTES,
                startup_overhead=config.DD_STARTUP,
                topology=spec.to_dict(),
                device=device,
            )
            prefix = None
            if checkpoint:
                params["warm_blocks"] = CHECKPOINT_WARM_BLOCKS
                params["warm_block_bytes"] = DEEP_HIERARCHY_BLOCK_BYTES
                prefix = _dd_prefix(DEEP_HIERARCHY_BLOCK_BYTES,
                                    topology=spec.to_dict(), device=device)
            sweep.add(f"d{depth}/f{fanout}", DD, prefix=prefix, **params)
    return sweep


#: Uplink widths the traffic sweep relieves the contended uplink with.
TRAFFIC_UPLINK_WIDTHS = (1, 2, 4)


def traffic_sweep() -> Sweep:
    """Multi-flow contention study: the scenario library as sweep points.

    ``fanout_contention`` runs at three uplink widths (the fairness/
    tail-latency relief curve); the rest of the library rides along at
    defaults so the sweep doubles as a cached regression net over every
    scenario.  Each point's parameters carry the full serialised
    scenario, so the result cache keys on the exact experiment.
    """
    sweep = Sweep("traffic")
    for width in TRAFFIC_UPLINK_WIDTHS:
        sweep.add(f"fanout_contention/x{width}", SCENARIO,
                  scenario=fanout_contention(uplink_width=width).to_dict())
    for name, builder in sorted(SCENARIOS.items()):
        if name == "fanout_contention":
            continue  # swept above at three widths
        sweep.add(name, SCENARIO, scenario=builder().to_dict())
    return sweep


def device_level_sweep() -> Sweep:
    """Section VI-B in-text: device-level sector throughput, Gen 2 x1."""
    sweep = Sweep("device_level")
    sweep.add("gen2_x1", DD, **_dd_params("64MB"))
    return sweep


#: CLI/EXPERIMENTS.md registry: experiment name -> sweep builder.
SWEEPS = {
    "fig9a": fig9a_sweep,
    "fig9b": fig9b_sweep,
    "fig9c": fig9c_sweep,
    "fig9d": fig9d_sweep,
    "table2": table2_sweep,
    "ablations": ablations_sweep,
    "device_level": device_level_sweep,
    "stress": stress_sweep,
    "deep_hierarchy": deep_hierarchy_sweep,
    "traffic": traffic_sweep,
}
