"""Core-performance microbenchmark suite (``BENCH_core.json``).

The sweep engine (PR 2) parallelises *across* runs; this suite watches
the speed of *one* run — the hot path PR 4 overhauled — so that future
changes cannot silently regress it.  Three benchmarks, cheapest first:

* **eventq** — raw scheduler throughput: a deterministic synthetic
  workload of self-rescheduling events plus timer-style
  deschedule/reschedule churn, reported as operations per second
  (schedules + dispatches).
* **link** — link-layer saturation: posted MESSAGE TLPs pumped through
  a Gen 2 x1 :class:`~repro.pcie.link.PcieLink` against an
  always-accepting sink, reported as delivered TLPs per second of wall
  clock.
* **dd** — the headline number: the paper's Gen 2 x1 64 MB-scaled
  ``dd`` point, best-of-N wall clock with tracer and checker off, plus
  one run with the invariant checker armed.

Every record also carries a **calibration** time: a frozen heapq
workload that does not touch repro code at all.  Dividing a wall-clock
metric by the calibration time gives a machine-normalised number, which
is what ``tools/check_bench_regression.py`` thresholds — CI runners of
very different speeds can then share one committed threshold file.

The JSON artifact keeps a ``before`` and an ``after`` block so a perf
PR records both sides of its claim::

    python -m benchmarks.core_perf --phase before   # on the old tree
    python -m benchmarks.core_perf --phase after    # on the new tree

Writing one phase preserves the other phase already in the file and
recomputes the ``speedup`` summary.  ``--quick`` shrinks repeat counts
for CI.
"""

import argparse
import heapq
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from benchmarks import config
from repro.mem.packet import MemCmd, Packet
from repro.mem.port import MasterPort, SlavePort
from repro.pcie.link import PcieLink
from repro.pcie.timing import PcieGen
from repro.sim.eventq import Event, EventQueue
from repro.sim.simobject import SimObject, Simulator

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_CORE_PATH = os.path.join(RESULTS_DIR, "BENCH_core.json")

SCHEMA = "repro-bench-core/1"


# ---------------------------------------------------------------------------
# Calibration: a frozen pure-stdlib workload.  DO NOT CHANGE — normalised
# metrics (metric / calibration) are only comparable across commits while
# this loop stays byte-for-byte identical.
# ---------------------------------------------------------------------------
def calibration_workload() -> float:
    """Wall-clock seconds for a fixed heapq push/pop workload."""
    start = time.perf_counter()
    heap: List[int] = []
    push, pop = heapq.heappush, heapq.heappop
    seed = 0x2545F4914F6CDD1D
    value = 88172645463325252
    for __ in range(200_000):
        value ^= (value << 13) & 0xFFFFFFFFFFFFFFFF
        value ^= value >> 7
        value ^= (value << 17) & 0xFFFFFFFFFFFFFFFF
        push(heap, value % (seed & 0xFFFF))
        if len(heap) > 64:
            pop(heap)
    while heap:
        pop(heap)
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# Benchmark 1: event-queue operation throughput.
# ---------------------------------------------------------------------------
class _ChurnEvent(Event):
    """Self-rescheduling event with a deterministic LCG delay stream."""

    __slots__ = ("queue", "state", "budget")

    def __init__(self, queue: EventQueue, seed: int, budget: int):
        super().__init__(name="churn")
        self.queue = queue
        self.state = seed
        self.budget = budget

    def process(self) -> None:
        """Fire: burn one budget unit and reschedule at an LCG delay."""
        if self.budget <= 0:
            return
        self.budget -= 1
        self.state = (self.state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        # Mix of short (intra-bucket), medium and far delays.
        pick = self.state >> 61
        if pick < 5:
            delay = 1 + (self.state % 30_000)
        elif pick < 7:
            delay = 1 + (self.state % 700_000)
        else:
            delay = 1 + (self.state % 50_000_000)
        self.queue.schedule(self, self.queue.curtick + delay)


class _TimerEvent(Event):
    """Stands in for replay/ACK timers: mostly rescheduled, rarely fires."""

    __slots__ = ()

    def __init__(self):
        super().__init__(name="timer")

    def process(self) -> None:
        """Timers in this workload are churn; firing needs no work."""


def _churn(queue, n_events: int, n_chains: int,
           n_timers: int) -> Dict[str, float]:
    """Run the churn workload on ``queue`` (any backend event queue)."""
    per_chain = n_events // n_chains
    chains = [_ChurnEvent(queue, seed=0xC0FFEE + 97 * i, budget=per_chain)
              for i in range(n_chains)]
    timers = [_TimerEvent() for __ in range(n_timers)]

    ops = 0
    start = time.perf_counter()
    for i, ev in enumerate(chains):
        queue.schedule(ev, i)
    dispatched = 0
    while not queue.empty():
        queue.service_one()
        dispatched += 1
        if dispatched % 16 == 0:
            timer = timers[(dispatched // 16) % n_timers]
            queue.reschedule(timer, queue.curtick + 773_000)
            ops += 2  # deschedule + schedule
    elapsed = time.perf_counter() - start
    ops += dispatched * 2  # one schedule + one dispatch per serviced event
    return {"ops_per_sec": ops / elapsed, "wall_s": elapsed,
            "events": dispatched}


def bench_eventq(n_events: int = 60_000, n_chains: int = 24,
                 n_timers: int = 8) -> Dict[str, float]:
    """Measure scheduler ops/sec on a synthetic churn workload.

    ``n_chains`` self-rescheduling events split ``n_events`` dispatches
    between them while ``n_timers`` timer events are rescheduled on
    every 16th dispatch (heavy deschedule traffic, like the link
    layer's replay timers).
    """
    return _churn(EventQueue("bench"), n_events, n_chains, n_timers)


def bench_dispatch(n_events: int = 40_000,
                   repeats: int = 3) -> Dict[str, Any]:
    """Per-backend scheduler dispatch overhead on one churn workload.

    Runs the same churn workload on every distinct event-queue
    implementation the backend registry knows about (``turbo`` reuses
    the hybrid queue, so only ``reference`` and ``hybrid`` are
    measured).  The headline is ``hybrid_vs_reference`` — hybrid ops
    per second over reference ops per second — which CI bounds from
    below: if registry indirection or fast-path notification hooks ever
    bloat the hybrid dispatch loop, the ratio sinks and the gate trips,
    machine speed cancelled out by construction.  Repeats are
    interleaved across backends and each side keeps its best, so a load
    spike hits both queues rather than skewing the ratio.
    """
    from repro.sim.backend import resolve

    best: Dict[str, float] = {}
    for __ in range(repeats):
        for name in ("reference", "hybrid"):
            queue = resolve(name).make_eventq(f"dispatch-{name}")
            result = _churn(queue, n_events, n_chains=24, n_timers=8)
            if result["ops_per_sec"] > best.get(name, 0.0):
                best[name] = result["ops_per_sec"]
    out: Dict[str, Any] = {
        f"{name}_ops_per_sec": round(ops) for name, ops in best.items()}
    out["hybrid_vs_reference"] = round(
        best["hybrid"] / best["reference"], 4)
    return out


# ---------------------------------------------------------------------------
# Benchmark 2: link saturation.
# ---------------------------------------------------------------------------
class _LinkDriver(SimObject):
    """Pumps posted MESSAGE TLPs into a link as fast as it will accept."""

    def __init__(self, sim: Simulator, link: PcieLink, n_tlps: int,
                 payload: int = 64):
        super().__init__(sim, "driver")
        self.remaining = n_tlps
        self.payload = payload
        self._pump_pending = False
        self.port = MasterPort(self, "port", recv_timing_resp=lambda pkt: True,
                               recv_req_retry=self._pump_soon)
        self.port.bind(link.upstream_if.slave_port)

    def _pump_soon(self) -> None:
        # Like every real component, respond to a retry through a
        # deferred event — the link issues retries from inside its own
        # transmit path, so a synchronous send would re-enter it.
        if self._pump_pending:
            return
        self._pump_pending = True
        self.schedule(0, self._pump_deferred, name="pump")

    def _pump_deferred(self) -> None:
        self._pump_pending = False
        self.pump()

    def pump(self) -> None:
        """Offer TLPs until the link refuses or the budget is spent."""
        while self.remaining > 0:
            pkt = Packet(MemCmd.MESSAGE, 0x1000, self.payload,
                         data=bytes(self.payload), requestor=self.full_name,
                         create_tick=self.curtick)
            if not self.port.send_timing_req(pkt):
                return
            self.remaining -= 1


class _LinkSink(SimObject):
    """Always-accepting endpoint counting delivered TLPs."""

    def __init__(self, sim: Simulator, link: PcieLink):
        super().__init__(sim, "sink")
        self.received = 0
        self.port = SlavePort(self, "port", recv_timing_req=self._accept,
                              recv_resp_retry=lambda: None)
        self.port.bind(link.downstream_if.master_port)

    def _accept(self, pkt: Packet) -> bool:
        self.received += 1
        return True


def bench_link_saturation(n_tlps: int = 6_000) -> Dict[str, float]:
    """Measure delivered TLPs per wall-clock second on a Gen 2 x1 link."""
    sim = Simulator("linkbench")
    link = PcieLink(sim, "link", gen=PcieGen.GEN2, width=1)
    driver = _LinkDriver(sim, link, n_tlps)
    sink = _LinkSink(sim, link)
    start = time.perf_counter()
    driver.pump()
    sim.run(max_events=200 * n_tlps)
    elapsed = time.perf_counter() - start
    if sink.received != n_tlps:
        raise RuntimeError(
            f"link saturation wedged: delivered {sink.received}/{n_tlps}")
    return {"tlps_per_sec": n_tlps / elapsed, "wall_s": elapsed,
            "sim_ticks": sim.curtick}


# ---------------------------------------------------------------------------
# Benchmark 3: the full dd Gen 2 x1 point.
# ---------------------------------------------------------------------------
def bench_dd(best_of: int = 3, check: bool = False,
             backend: Optional[str] = None) -> Dict[str, Any]:
    """Best-of-N wall clock of the Gen 2 x1 64 MB-scaled ``dd`` point.

    Tracing stays off (``trace_categories=None``); ``check`` arms the
    runtime invariant checker for the whole run.  ``backend`` pins the
    simulation engine for the measured runs by exporting
    ``REPRO_BACKEND`` around them (the same path the harness ``--backend``
    flag uses), restoring the environment afterwards; None keeps
    whatever engine the caller's environment selects.
    """
    from benchmarks.harness import run_dd
    from repro.sim.backend import BACKEND_ENV, resolve

    if backend is not None:
        resolve(backend)  # fail fast on unknown names
        saved = os.environ.get(BACKEND_ENV)
        os.environ[BACKEND_ENV] = backend
    runs: List[float] = []
    metrics: Dict[str, Any] = {}
    try:
        for __ in range(best_of):
            start = time.perf_counter()
            metrics = run_dd(config.BLOCK_SIZES["64MB"], root_link_width=1,
                             device_link_width=1, trace_categories=None,
                             check=check)
            runs.append(round(time.perf_counter() - start, 4))
    finally:
        if backend is not None:
            if saved is None:
                os.environ.pop(BACKEND_ENV, None)
            else:
                os.environ[BACKEND_ENV] = saved
    return {"wall_s": min(runs), "runs_s": runs,
            "throughput_gbps": round(metrics["throughput_gbps"], 6),
            "fastpath_batches": metrics["fastpath_batches"],
            "fastpath_tlps": metrics["fastpath_tlps"],
            "fastpath_standdowns": metrics["fastpath_standdowns"]}


# ---------------------------------------------------------------------------
# Suite driver and artifact handling.
# ---------------------------------------------------------------------------
def run_suite(quick: bool = False, skip_checked: bool = False) -> Dict[str, Any]:
    """Run all benchmarks; return one phase block for BENCH_core.json."""
    from repro.sim.backend import default_backend_name

    calib = min(calibration_workload() for __ in range(2 if quick else 3))
    eventq = bench_eventq()
    dispatch = bench_dispatch()
    link = bench_link_saturation()
    best_of = 2 if quick else 3
    dd = bench_dd(best_of=best_of, backend="hybrid")
    dd_turbo = bench_dd(best_of=best_of, backend="turbo")
    # The backends-are-interchangeable contract, enforced where the
    # numbers are produced: a turbo run that drifts from hybrid by even
    # one bit is a broken fast path, not a benchmark result.
    if dd_turbo["throughput_gbps"] != dd["throughput_gbps"]:
        raise RuntimeError(
            "turbo backend changed simulated throughput: "
            f"{dd_turbo['throughput_gbps']} != {dd['throughput_gbps']}")
    block: Dict[str, Any] = {
        "backend": default_backend_name(),
        "calibration_s": round(calib, 4),
        "eventq_ops_per_sec": round(eventq["ops_per_sec"]),
        "eventq_wall_s": round(eventq["wall_s"], 4),
        "dispatch_reference_ops_per_sec": dispatch["reference_ops_per_sec"],
        "dispatch_hybrid_ops_per_sec": dispatch["hybrid_ops_per_sec"],
        "dispatch_hybrid_vs_reference": dispatch["hybrid_vs_reference"],
        "link_tlps_per_sec": round(link["tlps_per_sec"]),
        "link_wall_s": round(link["wall_s"], 4),
        "dd_gen2x1_wall_s": dd["wall_s"],
        "dd_gen2x1_runs_s": dd["runs_s"],
        "dd_gen2x1_throughput_gbps": dd["throughput_gbps"],
        "dd_gen2x1_turbo_wall_s": dd_turbo["wall_s"],
        "dd_gen2x1_turbo_runs_s": dd_turbo["runs_s"],
        "dd_gen2x1_turbo_fastpath_batches": dd_turbo["fastpath_batches"],
        "dd_gen2x1_turbo_fastpath_tlps": dd_turbo["fastpath_tlps"],
        "dd_gen2x1_turbo_fastpath_standdowns":
            dd_turbo["fastpath_standdowns"],
        # Machine-normalised: wall clock in units of the calibration
        # loop.  These are what the CI thresholds bound.
        "dd_gen2x1_norm": round(dd["wall_s"] / calib, 3),
        "dd_gen2x1_turbo_norm": round(dd_turbo["wall_s"] / calib, 3),
        "link_norm": round(link["wall_s"] / calib, 3),
        "eventq_norm": round(eventq["wall_s"] / calib, 3),
        "python": platform.python_version(),
    }
    if not skip_checked:
        checked = bench_dd(best_of=1, check=True)
        block["dd_gen2x1_checked_wall_s"] = checked["wall_s"]
        if checked["throughput_gbps"] != dd["throughput_gbps"]:
            raise RuntimeError(
                "checker-armed run changed simulated throughput: "
                f"{checked['throughput_gbps']} != {dd['throughput_gbps']}")
    return block


def load_bench(path: str) -> Dict[str, Any]:
    """Read an existing BENCH_core.json; missing/corrupt files → {}."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return {}
    return doc if isinstance(doc, dict) else {}


def _speedup(doc: Dict[str, Any]) -> Optional[Dict[str, float]]:
    """Before/after speedup summary when both phases are present."""
    before, after = doc.get("before"), doc.get("after")
    if not before or not after:
        return None
    out = {}
    for key in ("dd_gen2x1_wall_s", "link_wall_s", "eventq_wall_s"):
        if before.get(key) and after.get(key):
            out[key.replace("_wall_s", "")] = round(before[key] / after[key], 3)
    return out or None


def write_bench(phase_block: Dict[str, Any], phase: str,
                path: str = BENCH_CORE_PATH) -> Dict[str, Any]:
    """Merge one phase into the artifact at ``path`` and rewrite it."""
    doc = load_bench(path)
    doc["schema"] = SCHEMA
    doc[phase] = phase_block
    doc["timestamp"] = round(time.time(), 3)
    speedup = _speedup(doc)
    if speedup is not None:
        doc["speedup"] = speedup
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the suite and merge one phase block into the artifact."""
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.core_perf",
        description="Single-run hot-path benchmarks (eventq / link / dd).")
    parser.add_argument("--phase", choices=("before", "after"),
                        default="after",
                        help="which block of BENCH_core.json to write "
                             "(default: after)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats (CI)")
    parser.add_argument("--skip-checked", action="store_true",
                        help="skip the checker-armed dd run")
    parser.add_argument("--output", default=BENCH_CORE_PATH, metavar="PATH",
                        help=f"artifact path (default: {BENCH_CORE_PATH})")
    args = parser.parse_args(argv)

    block = run_suite(quick=args.quick, skip_checked=args.skip_checked)
    doc = write_bench(block, args.phase, args.output)
    print(json.dumps(doc.get("speedup", block), indent=2, sort_keys=True))
    print(f"wrote {args.phase!r} phase: {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
