"""Traffic-engine performance benchmark (``BENCH_traffic.json``).

The multi-flow traffic engine multiplies the per-event work of a run:
several initiators share the fabric, every uplink arbitrates, and each
flow samples its own latency quantiles.  This suite watches the wall
clock of one representative scenario — ``fanout_contention`` with four
dd readers behind one Gen 2 x1 uplink — so that future changes to the
engine, the scheduler, or the fabric cannot silently make multi-flow
simulation slow.

The artifact mirrors :mod:`benchmarks.core_perf`: a ``before``/
``after`` phase pair, a frozen-calibration-normalised wall clock
(``traffic_norm``) that `tools/check_bench_regression.py` bounds via
``benchmarks/traffic_perf_thresholds.json``, and a checker-armed run
whose simulated results must be identical to the unchecked run::

    python -m benchmarks.traffic_perf --phase after --quick
    python tools/check_bench_regression.py \
        benchmarks/results/BENCH_traffic.json \
        benchmarks/traffic_perf_thresholds.json
"""

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from benchmarks.core_perf import calibration_workload, load_bench
from repro.workloads.scenarios import fanout_contention, run_scenario

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_TRAFFIC_PATH = os.path.join(RESULTS_DIR, "BENCH_traffic.json")

SCHEMA = "repro-bench-traffic/1"

#: The benchmark scenario: the library's contention workhorse, slightly
#: enlarged so the measured region is dominated by steady-state flow
#: traffic rather than boot and driver probe.
BENCH_REQUESTS = 12
BENCH_BLOCK_BYTES = 8192


def _bench_scenario():
    """The fixed scenario every phase of this benchmark runs."""
    return fanout_contention(requests=BENCH_REQUESTS,
                             block_bytes=BENCH_BLOCK_BYTES)


def bench_traffic(best_of: int = 3, check: bool = False) -> Dict[str, Any]:
    """Best-of-N wall clock of the 4-flow fanout_contention scenario."""
    runs: List[float] = []
    results = None
    for __ in range(best_of):
        start = time.perf_counter()
        system, engine = run_scenario(_bench_scenario(), check=check)
        runs.append(round(time.perf_counter() - start, 4))
        results = engine.results()
        if not results["completed"]:
            raise RuntimeError("traffic benchmark scenario did not finish")
        if check and system.sim.checker.violations:
            raise RuntimeError(
                f"checker-armed benchmark run violated invariants: "
                f"{sorted({v.rule for v in system.sim.checker.violations})}")
    return {"wall_s": min(runs), "runs_s": runs,
            "total_gbps": round(results["total_gbps"], 6),
            "fairness_index": round(results["fairness_index"], 6)}


def run_suite(quick: bool = False, skip_checked: bool = False) -> Dict[str, Any]:
    """Run the benchmark; return one phase block for BENCH_traffic.json."""
    calib = min(calibration_workload() for __ in range(2 if quick else 3))
    traffic = bench_traffic(best_of=2 if quick else 3)
    block: Dict[str, Any] = {
        "calibration_s": round(calib, 4),
        "traffic_wall_s": traffic["wall_s"],
        "traffic_runs_s": traffic["runs_s"],
        "traffic_total_gbps": traffic["total_gbps"],
        "traffic_fairness_index": traffic["fairness_index"],
        # Machine-normalised: wall clock in units of the calibration
        # loop.  This is what the CI threshold bounds.
        "traffic_norm": round(traffic["wall_s"] / calib, 3),
        "python": platform.python_version(),
    }
    if not skip_checked:
        checked = bench_traffic(best_of=1, check=True)
        block["traffic_checked_wall_s"] = checked["wall_s"]
        if checked["total_gbps"] != traffic["total_gbps"]:
            raise RuntimeError(
                "checker-armed run changed simulated throughput: "
                f"{checked['total_gbps']} != {traffic['total_gbps']}")
    return block


def write_bench(phase_block: Dict[str, Any], phase: str,
                path: str = BENCH_TRAFFIC_PATH) -> Dict[str, Any]:
    """Merge one phase into the artifact at ``path`` and rewrite it."""
    doc = load_bench(path)
    doc["schema"] = SCHEMA
    doc[phase] = phase_block
    doc["timestamp"] = round(time.time(), 3)
    before, after = doc.get("before"), doc.get("after")
    if before and after and before.get("traffic_wall_s") \
            and after.get("traffic_wall_s"):
        doc["speedup"] = {"traffic": round(
            before["traffic_wall_s"] / after["traffic_wall_s"], 3)}
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the suite and merge one phase block into the artifact."""
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.traffic_perf",
        description="Multi-flow traffic-engine wall-clock benchmark.")
    parser.add_argument("--phase", choices=("before", "after"),
                        default="after",
                        help="which block of BENCH_traffic.json to write "
                             "(default: after)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats (CI)")
    parser.add_argument("--skip-checked", action="store_true",
                        help="skip the checker-armed run")
    parser.add_argument("--output", default=BENCH_TRAFFIC_PATH,
                        metavar="PATH",
                        help=f"artifact path (default: {BENCH_TRAFFIC_PATH})")
    args = parser.parse_args(argv)

    block = run_suite(quick=args.quick, skip_checked=args.skip_checked)
    doc = write_bench(block, args.phase, args.output)
    print(json.dumps(doc.get("speedup", block), indent=2, sort_keys=True))
    print(f"wrote {args.phase!r} phase: {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
