"""Section VI-B, in-text: device-level sector throughput.

"If we remove the OS overheads and make our measurements at the gem5
device level, each sector (4KB) of the IDE disk is transferred with a
throughput of 3.072 Gbps over our PCI-Express link" — Gen 2 x1, 64-byte
write TLPs.  Pure wire arithmetic puts the ceiling at 3.05 Gbps
(64 B payload / 84 wire bytes at 2 ns per byte); the measured per-sector
value sits slightly below because of the end-of-sector response barrier.
"""

import pytest

from benchmarks import sweeps
from benchmarks.harness import run_sweep, save_results
from repro.pcie.timing import LinkTiming, PcieGen
from repro.sim import ticks


@pytest.fixture(scope="module")
def device_level():
    result = run_sweep(sweeps.device_level_sweep())
    print("\n" + result.summary())
    point = result.results["gen2_x1"]
    wire = LinkTiming(PcieGen.GEN2, 1)
    per_tlp = wire.transmission_ticks(wire.tlp_wire_bytes(64))
    ceiling = 64 * 8 / ticks.to_ns(per_tlp)
    payload = {
        "measured_gbps": point["device_level_gbps"],
        "wire_ceiling_gbps": ceiling,
        "paper_gbps": 3.072,
        "dd_level_gbps": point["throughput_gbps"],
    }
    print("\n# Device-level sector throughput (Gen 2 x1)")
    for key, value in payload.items():
        print(f"  {key}: {value:.3f}")
    save_results("device_level_throughput", payload)
    return payload


def test_device_level_generates(benchmark, device_level):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert device_level["measured_gbps"] > 0


def test_device_level_near_paper_value(benchmark, device_level):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Paper: 3.072 Gbps.  Ours must land in the same regime: above the
    # dd-level number, below the wire ceiling.
    measured = device_level["measured_gbps"]
    assert 2.3 < measured <= device_level["wire_ceiling_gbps"] + 0.01
    assert measured > device_level["dd_level_gbps"]


def test_wire_ceiling_matches_hand_arithmetic(benchmark, device_level):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert device_level["wire_ceiling_gbps"] == pytest.approx(3.0476, rel=1e-3)
