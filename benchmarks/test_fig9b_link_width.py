"""Figure 9(b): dd throughput vs PCI-Express link width (Gen 2,
x1/x2/x4/x8, every link in the fabric swept together).

Paper's observations:

* x1 → x2 gives ≈1.67× (not 2×: software costs don't scale with width);
* x2 → x4 gives a smaller increase;
* x8 stops scaling — "the x8 link transmits packets too fast for the
  switch port to handle" — with ~27 % of transmitted packets
  experiencing replay versus ≈0 % at x2/x4.

Our model reproduces the scaling shape and the congestion cliff.  The
paper's gem5 model overruns the switch port and recovers by replaying
dropped TLPs; with per-class credit flow control (this repo's link
layer) the same overrun surfaces as *credit starvation* instead — the
transmitter stalls waiting for UpdateFC rather than blind-firing into
a full port — so the cliff is asserted on ``fc_stall_ticks`` and the
replay fraction stays ≈0 at every width.  Same physics, different
symptom; see EXPERIMENTS.md for the quantitative comparison and
ARCHITECTURE.md ("Flow control & ordering") for the mechanism.
"""

import pytest

from benchmarks import config, sweeps
from benchmarks.harness import run_sweep, save_results, table_to_payload
from repro.analysis.report import Table

BLOCKS = sweeps.FIG9B_BLOCKS


def build_results():
    """Run the Fig. 9(b) sweep; return its table and congestion metrics.

    The congestion dict maps ``(block, width)`` to ``(replay_fraction,
    fc_stall_per_tlp)`` — stall ticks normalised per transmitted TLP so
    the two block sizes are comparable.
    """
    result = run_sweep(sweeps.fig9b_sweep())
    print("\n" + result.summary())
    table = Table("Fig 9(b): dd throughput vs link width", "block", "Gbps")
    congestion = {}
    series = {w: table.new_series(f"x{w}") for w in config.LINK_WIDTHS}
    for label in BLOCKS:
        for width in config.LINK_WIDTHS:
            point = result.results[f"{label}/x{width}"]
            series[width].add(label, point["throughput_gbps"])
            congestion[(label, width)] = (
                point["replay_fraction"],
                point["fc_stall_ticks"] / max(point["tlps_sent"], 1),
            )
    return table, congestion


@pytest.fixture(scope="module")
def fig9b():
    table, congestion = build_results()
    print("\n" + table.render())
    print("congestion (replay fraction, stall ticks/TLP):",
          {f"{k[0]}/x{k[1]}": (round(r, 3), round(s, 1))
           for k, (r, s) in congestion.items()})
    payload = table_to_payload(table)
    payload["replay_fractions"] = {
        f"{k[0]}/x{k[1]}": r for k, (r, __) in congestion.items()}
    payload["fc_stall_per_tlp"] = {
        f"{k[0]}/x{k[1]}": s for k, (__, s) in congestion.items()}
    save_results("fig9b_link_width", payload)
    return table, congestion


def test_fig9b_generates_all_points(benchmark, fig9b):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table, __ = fig9b
    assert len(table.series) == len(config.LINK_WIDTHS)


def test_x1_to_x2_scaling_near_paper(benchmark, fig9b):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table, __ = fig9b
    by_name = {s.name: s for s in table.series}
    for block in BLOCKS:
        ratio = by_name["x2"][block] / by_name["x1"][block]
        # Paper: 1.67x.
        assert 1.4 < ratio < 1.9, f"x2/x1 = {ratio:.2f}"


def test_x2_to_x4_increase_is_smaller(benchmark, fig9b):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table, __ = fig9b
    by_name = {s.name: s for s in table.series}
    for block in BLOCKS:
        first = by_name["x2"][block] / by_name["x1"][block]
        second = by_name["x4"][block] / by_name["x2"][block]
        assert second < first


def test_x8_stops_scaling(benchmark, fig9b):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table, __ = fig9b
    by_name = {s.name: s for s in table.series}
    for block in BLOCKS:
        third = by_name["x8"][block] / by_name["x4"][block]
        # The paper sees an outright drop; our penalty is milder but
        # scaling clearly collapses (x4/x2 is ~1.5).
        assert third < 1.15, f"x8/x4 = {third:.2f}"


def test_congestion_cliff_at_x8(benchmark, fig9b):
    """The paper's x8 replay cliff, re-expressed in credit terms.

    The switch-port overrun the paper reports as a ~27 % replay storm
    manifests here as credit starvation: zero stall ticks up to x4,
    then a wall of them at x8 (≈14 k ticks per TLP).  Replays stay at
    zero everywhere — without error injection nothing is ever dropped,
    the transmitter just waits for credits.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    __, congestion = fig9b
    for (block, width), (fraction, stall_per_tlp) in congestion.items():
        assert fraction < 0.01, f"x{width} replays {fraction:.1%}"
        if width <= 4:
            assert stall_per_tlp < 1.0, (
                f"x{width} stalls {stall_per_tlp:.0f} ticks/TLP")
        else:
            assert stall_per_tlp > 1000.0, (
                f"x8 stalls only {stall_per_tlp:.0f} ticks/TLP")
