"""Figure 9(b): dd throughput vs PCI-Express link width (Gen 2,
x1/x2/x4/x8, every link in the fabric swept together).

Paper's observations:

* x1 → x2 gives ≈1.67× (not 2×: software costs don't scale with width);
* x2 → x4 gives a smaller increase;
* x8 stops scaling — "the x8 link transmits packets too fast for the
  switch port to handle" — with ~27 % of transmitted packets
  experiencing replay versus ≈0 % at x2/x4.

Our model reproduces the scaling shape and the replay cliff; the
magnitude of the x8 throughput penalty is smaller than the paper's
(see EXPERIMENTS.md for the quantitative comparison).
"""

import pytest

from benchmarks import config, sweeps
from benchmarks.harness import run_sweep, save_results, table_to_payload
from repro.analysis.report import Table

BLOCKS = sweeps.FIG9B_BLOCKS


def build_results():
    """Run the Fig. 9(b) sweep; return its table and replay fractions."""
    result = run_sweep(sweeps.fig9b_sweep())
    print("\n" + result.summary())
    table = Table("Fig 9(b): dd throughput vs link width", "block", "Gbps")
    replay = {}
    series = {w: table.new_series(f"x{w}") for w in config.LINK_WIDTHS}
    for label in BLOCKS:
        for width in config.LINK_WIDTHS:
            point = result.results[f"{label}/x{width}"]
            series[width].add(label, point["throughput_gbps"])
            replay[(label, width)] = point["replay_fraction"]
    return table, replay


@pytest.fixture(scope="module")
def fig9b():
    table, replay = build_results()
    print("\n" + table.render())
    print("replay fractions:", {f"{k[0]}/x{k[1]}": round(v, 3)
                                for k, v in replay.items()})
    payload = table_to_payload(table)
    payload["replay_fractions"] = {f"{k[0]}/x{k[1]}": v for k, v in replay.items()}
    save_results("fig9b_link_width", payload)
    return table, replay


def test_fig9b_generates_all_points(benchmark, fig9b):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table, __ = fig9b
    assert len(table.series) == len(config.LINK_WIDTHS)


def test_x1_to_x2_scaling_near_paper(benchmark, fig9b):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table, __ = fig9b
    by_name = {s.name: s for s in table.series}
    for block in BLOCKS:
        ratio = by_name["x2"][block] / by_name["x1"][block]
        # Paper: 1.67x.
        assert 1.4 < ratio < 1.9, f"x2/x1 = {ratio:.2f}"


def test_x2_to_x4_increase_is_smaller(benchmark, fig9b):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table, __ = fig9b
    by_name = {s.name: s for s in table.series}
    for block in BLOCKS:
        first = by_name["x2"][block] / by_name["x1"][block]
        second = by_name["x4"][block] / by_name["x2"][block]
        assert second < first


def test_x8_stops_scaling(benchmark, fig9b):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table, __ = fig9b
    by_name = {s.name: s for s in table.series}
    for block in BLOCKS:
        third = by_name["x8"][block] / by_name["x4"][block]
        # The paper sees an outright drop; our penalty is milder but
        # scaling clearly collapses (x4/x2 is ~1.5).
        assert third < 1.15, f"x8/x4 = {third:.2f}"


def test_replay_cliff_at_x8(benchmark, fig9b):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    __, replay = fig9b
    for (block, width), fraction in replay.items():
        if width <= 4:
            assert fraction < 0.01, f"x{width} replays {fraction:.1%}"
        else:
            assert fraction > 0.02, f"x8 replays only {fraction:.1%}"
