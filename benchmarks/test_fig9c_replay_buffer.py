"""Figure 9(c): dd on an x8 fabric with replay buffer size 1/2/3/4.

Paper's observations:

* replay buffers of 3 or 4 suffer heavy timeouts (~27 % of transmitted
  packets) while 1 and 2 stay near zero (0 % and 6 %);
* *source throttling* — the small replay buffer pacing the sender —
  therefore keeps throughput for sizes 1/2 at or above sizes 3/4:
  "a complex and non intuitive behaviour of the PCI-Express
  interconnect while running a simple application".

With per-class credit flow control the congested x8 fabric no longer
drops TLPs at all, so the paper's timeout storm cannot occur: every
replay-buffer size completes with zero replays and identical
throughput (credits pace the sender to the switch drain rate, which
is the real bottleneck).  Source throttling is still visible, just
benignly — at size 1 the replay buffer paces the sender *before*
credit starvation can, so the link records far fewer credit-stall
ticks than at sizes 2–4.  The assertions below pin that credit-era
signature; EXPERIMENTS.md keeps the comparison to the paper's
replay-era numbers.
"""

import pytest

from benchmarks import config, sweeps
from benchmarks.harness import run_sweep, save_results


@pytest.fixture(scope="module")
def fig9c():
    result = run_sweep(sweeps.fig9c_sweep())
    print("\n" + result.summary())
    rows = {rb: result.results[f"rb{rb}"]
            for rb in config.REPLAY_BUFFER_SIZES}
    print("\n# Fig 9(c): x8, replay buffer sweep (block 128MB)")
    print(f"{'rb':>3} {'Gbps':>7} {'replay%':>8} {'timeouts':>9} "
          f"{'stall Mticks':>12}")
    for rb, r in rows.items():
        print(f"{rb:>3} {r['throughput_gbps']:>7.3f} "
              f"{100 * r['replay_fraction']:>8.1f} {r['timeouts']:>9} "
              f"{r['fc_stall_ticks'] / 1e6:>12.1f}")
    save_results("fig9c_replay_buffer", {str(k): v for k, v in rows.items()})
    return rows


def test_fig9c_generates_all_points(benchmark, fig9c):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(fig9c) == set(config.REPLAY_BUFFER_SIZES)


def test_no_replays_or_timeouts_at_any_size(benchmark, fig9c):
    """Credit flow control retires the paper's timeout storm: nothing
    is dropped on a congested-but-error-free fabric, so every replay
    buffer size finishes with a clean link layer."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for rb in config.REPLAY_BUFFER_SIZES:
        assert fig9c[rb]["replay_fraction"] < 0.001, f"rb{rb} replayed"
        assert fig9c[rb]["timeouts"] == 0, f"rb{rb} timed out"


def test_source_throttling_preempts_credit_stalls(benchmark, fig9c):
    """The paper's source-throttling effect, in credit terms: a
    single-entry replay buffer paces the sender on ACK round-trips
    *before* it can exhaust the receiver's credits, so rb1 accumulates
    far less credit-stall time than the sizes that let the transmitter
    run ahead into starvation."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert fig9c[1]["fc_stall_ticks"] < 0.5 * fig9c[2]["fc_stall_ticks"]
    for rb in (2, 3, 4):
        assert fig9c[rb]["fc_stall_ticks"] > 0, f"rb{rb} never stalled"


def test_source_throttling_does_not_hurt_throughput(benchmark, fig9c):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Sizes 1 and 2 must be at least competitive with 3 and 4 — the
    # counter-intuitive heart of the figure.  With credits pacing the
    # sender to the switch drain rate the four sizes are in fact
    # near-identical; the paper-era risk was small sizes *losing*.
    small = max(fig9c[1]["throughput_gbps"], fig9c[2]["throughput_gbps"])
    large = max(fig9c[3]["throughput_gbps"], fig9c[4]["throughput_gbps"])
    assert small >= large * 0.97
