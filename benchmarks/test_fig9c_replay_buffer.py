"""Figure 9(c): dd on an x8 fabric with replay buffer size 1/2/3/4.

Paper's observations:

* replay buffers of 3 or 4 suffer heavy timeouts (~27 % of transmitted
  packets) while 1 and 2 stay near zero (0 % and 6 %);
* *source throttling* — the small replay buffer pacing the sender —
  therefore keeps throughput for sizes 1/2 at or above sizes 3/4:
  "a complex and non intuitive behaviour of the PCI-Express
  interconnect while running a simple application".
"""

import pytest

from benchmarks import config, sweeps
from benchmarks.harness import run_sweep, save_results


@pytest.fixture(scope="module")
def fig9c():
    result = run_sweep(sweeps.fig9c_sweep())
    print("\n" + result.summary())
    rows = {rb: result.results[f"rb{rb}"]
            for rb in config.REPLAY_BUFFER_SIZES}
    print("\n# Fig 9(c): x8, replay buffer sweep (block 128MB)")
    print(f"{'rb':>3} {'Gbps':>7} {'replay%':>8} {'timeouts':>9}")
    for rb, r in rows.items():
        print(f"{rb:>3} {r['throughput_gbps']:>7.3f} "
              f"{100 * r['replay_fraction']:>8.1f} {r['timeouts']:>9}")
    save_results("fig9c_replay_buffer", {str(k): v for k, v in rows.items()})
    return rows


def test_fig9c_generates_all_points(benchmark, fig9c):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(fig9c) == set(config.REPLAY_BUFFER_SIZES)


def test_small_replay_buffers_avoid_timeouts(benchmark, fig9c):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Paper: 0 % timeouts at size 1, ~6 % at 2, ~27 % at 3 and 4.
    assert fig9c[1]["replay_fraction"] < 0.02
    assert fig9c[2]["replay_fraction"] < fig9c[3]["replay_fraction"] + 0.02
    assert fig9c[4]["replay_fraction"] > fig9c[1]["replay_fraction"]
    assert fig9c[4]["replay_fraction"] > 0.02


def test_timeout_counts_grow_with_replay_buffer(benchmark, fig9c):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert fig9c[1]["timeouts"] <= fig9c[2]["timeouts"] <= fig9c[4]["timeouts"]


def test_source_throttling_does_not_hurt_throughput(benchmark, fig9c):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Sizes 1 and 2 must be at least competitive with 3 and 4 — the
    # counter-intuitive heart of the figure.
    small = max(fig9c[1]["throughput_gbps"], fig9c[2]["throughput_gbps"])
    large = max(fig9c[3]["throughput_gbps"], fig9c[4]["throughput_gbps"])
    assert small >= large * 0.97
