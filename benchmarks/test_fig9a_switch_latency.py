"""Figure 9(a): dd throughput vs block size — physical machine vs the
simulator at switch latencies 50/100/150 ns.

Paper's observations this reproduction must match in shape:

* the simulator tracks the physical machine's trend but sits below it
  (the paper: within 80–90 % once device differences are accounted);
* throughput grows with block size (fixed software cost amortising);
* cutting switch latency 150 → 50 ns buys only a few percent ("latency
  is not the only factor in determining the performance of a
  PCI-Express interconnect").
"""

import pytest

from benchmarks import config, sweeps
from benchmarks.harness import run_sweep, save_results, table_to_payload
from repro.analysis.report import Table
from repro.validation.physical_reference import PhysicalSetup


def build_table() -> Table:
    """Run the Fig. 9(a) sweep and shape it into the figure's table."""
    result = run_sweep(sweeps.fig9a_sweep())
    print("\n" + result.summary())
    table = Table("Fig 9(a): dd throughput vs block size",
                  "block", "Gbps")
    phys = PhysicalSetup(host_efficiency=0.86, startup_cost=config.PHYS_STARTUP)
    phys_series = table.new_series("phys")
    sim_series = {
        ns: table.new_series(f"L{ns}") for ns in config.SWITCH_LATENCIES_NS
    }
    for label, nbytes in config.BLOCK_SIZES.items():
        phys_series.add(label, phys.dd_throughput_gbps(nbytes))
        for ns in config.SWITCH_LATENCIES_NS:
            point = result.results[f"{label}/L{ns}"]
            sim_series[ns].add(label, point["throughput_gbps"])
    return table


@pytest.fixture(scope="module")
def fig9a_table():
    table = build_table()
    print("\n" + table.render())
    save_results("fig9a_switch_latency", table_to_payload(table))
    return table


def test_fig9a_generates_all_points(benchmark, fig9a_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(fig9a_table.series) == 1 + len(config.SWITCH_LATENCIES_NS)
    assert fig9a_table.xs() == sorted(config.BLOCK_SIZES)


def test_simulator_below_physical_but_same_order(benchmark, fig9a_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    phys, *sims = fig9a_table.series
    for sim in sims:
        for block in sim.points:
            assert sim[block] < phys[block]
            assert sim[block] > 0.6 * phys[block]


def test_throughput_grows_with_block_size(benchmark, fig9a_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    order = ["64MB", "128MB", "256MB", "512MB"]
    for series in fig9a_table.series:
        values = [series[b] for b in order]
        assert values == sorted(values), f"{series.name} not monotone: {values}"


def test_switch_latency_effect_is_small_but_positive(benchmark, fig9a_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_name = {s.name: s for s in fig9a_table.series}
    for block in config.BLOCK_SIZES:
        fast = by_name["L50"][block]
        slow = by_name["L150"][block]
        assert fast > slow  # lower latency helps...
        assert fast < slow * 1.10  # ...but only by a few percent
