"""Gate on a persisted stress-campaign result document.

Usage::

    python tools/check_stress_results.py benchmarks/results/stress_sweep.json

Exits non-zero (listing the offending configurations) unless every
point in the document completed its transfer with zero protocol
invariant violations — the stress campaign's pass criterion, kept in a
script so the CI job and local runs share one definition of "pass".
"""

import json
import sys


def main(argv=None):
    """Validate one stress_sweep.json; return a process exit status."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[0]) as fh:
        doc = json.load(fh)
    bad = {
        key: {"completed": row["completed"], "violations": row["violations"],
              "violated_rules": row.get("violated_rules", [])}
        for key, row in doc.items()
        if row["completed"] != 1.0 or row["violations"] != 0.0
    }
    if bad:
        print(f"stress campaign FAILED for {len(bad)}/{len(doc)} "
              f"configurations:")
        for key, row in sorted(bad.items()):
            print(f"  {key}: {row}")
        return 1
    print(f"stress campaign passed: {len(doc)} configurations completed "
          f"with zero invariant violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
