#!/usr/bin/env python3
"""Zero-dependency docstring-coverage checker (interrogate-compatible).

CI enforces docstring coverage on the documented-surface paths with
`interrogate --fail-under 80`; this stdlib-only equivalent lets the
test suite (and offline checkouts, where interrogate may not be
installed) enforce the same contract.  Counting rules mirror the
repository's ``[tool.interrogate]`` configuration:

* the module itself, public classes, and public functions/methods each
  need a docstring;
* names with a leading underscore (private, semiprivate, and dunders)
  and functions nested inside other functions are exempt;
* ``__init__`` methods are exempt (the class docstring covers them).

Usage::

    python tools/check_docstrings.py --fail-under 80 src/repro/exp ...

Exits 0 when coverage meets the threshold, 1 otherwise, 2 on bad paths.
"""

import argparse
import ast
import os
import sys
from typing import Iterator, List, Tuple


def iter_python_files(paths: List[str]) -> Iterator[str]:
    """Yield .py files under each path (files are yielded as-is)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            raise FileNotFoundError(path)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def audit_file(path: str) -> List[Tuple[str, bool]]:
    """Return (qualified name, has_docstring) for each node that counts."""
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    found: List[Tuple[str, bool]] = []
    module_name = os.path.basename(path)
    found.append((f"{module_name} (module)", ast.get_docstring(tree) is not None))

    def visit(node: ast.AST, prefix: str, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    found.append((f"{prefix}{child.name}",
                                  ast.get_docstring(child) is not None))
                visit(child, f"{prefix}{child.name}.", inside_function)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(child.name) and not inside_function:
                    found.append((f"{prefix}{child.name}",
                                  ast.get_docstring(child) is not None))
                visit(child, f"{prefix}{child.name}.", True)

    visit(tree, "", False)
    return found


def main(argv=None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="files or directories to audit")
    parser.add_argument("--fail-under", type=float, default=80.0,
                        metavar="PCT", help="minimum coverage percent")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="list every undocumented node")
    args = parser.parse_args(argv)

    total = covered = 0
    missing: List[str] = []
    try:
        for path in iter_python_files(args.paths):
            for name, has_doc in audit_file(path):
                total += 1
                if has_doc:
                    covered += 1
                else:
                    missing.append(f"{path}: {name}")
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc}", file=sys.stderr)
        return 2

    pct = 100.0 * covered / total if total else 100.0
    status = "PASSED" if pct >= args.fail_under else "FAILED"
    if args.verbose and missing:
        print("undocumented:")
        for line in missing:
            print(f"  {line}")
    print(f"docstring coverage: {covered}/{total} = {pct:.1f}% "
          f"(required: {args.fail_under:.1f}%) — {status}")
    return 0 if pct >= args.fail_under else 1


if __name__ == "__main__":
    sys.exit(main())
