"""Gate on the core-perf benchmark artifact.

Usage::

    python tools/check_bench_regression.py \
        benchmarks/results/BENCH_core.json \
        benchmarks/core_perf_thresholds.json

Compares the *machine-normalised* metrics of the artifact's ``after``
block (wall clocks divided by the frozen calibration workload, so the
numbers are comparable across machines) against the committed
thresholds, and fails when any metric exceeds its threshold.  The
thresholds are set ~25 % above the post-overhaul measurements: CI noise
passes, a real hot-path regression does not.  Kept in a script so the
CI job and local runs share one definition of "pass".
"""

import json
import sys

#: Metrics bounded by the thresholds file: normalised wall clocks
#: (lower is better) and absolute rate floors (higher is better).
CEILING_KEYS = ("dd_gen2x1_norm", "link_norm", "eventq_norm")
FLOOR_KEYS = ("eventq_ops_per_sec_min",)


def check(doc, thresholds):
    """Return a list of human-readable violations (empty == pass)."""
    after = doc.get("after")
    if not after:
        return ["BENCH_core.json has no 'after' block — run "
                "`python -m benchmarks.core_perf --phase after` first"]
    problems = []
    for key in CEILING_KEYS:
        limit = thresholds.get(key)
        value = after.get(key)
        if limit is None or value is None:
            problems.append(f"missing metric or threshold for {key!r} "
                            f"(value={value}, limit={limit})")
        elif value > limit:
            problems.append(f"{key} = {value} exceeds threshold {limit} "
                            f"({value / limit - 1.0:+.1%})")
    for key in FLOOR_KEYS:
        limit = thresholds.get(key)
        value = after.get(key.removesuffix("_min"))
        if limit is None or value is None:
            problems.append(f"missing metric or threshold for {key!r} "
                            f"(value={value}, limit={limit})")
        elif value < limit:
            problems.append(f"{key.removesuffix('_min')} = {value} below "
                            f"floor {limit} ({value / limit - 1.0:+.1%})")
    return problems


def main(argv=None):
    """Validate BENCH_core.json against thresholds; return exit status."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[0]) as fh:
        doc = json.load(fh)
    with open(argv[1]) as fh:
        thresholds = json.load(fh)
    problems = check(doc, thresholds)
    if problems:
        print("core-perf regression gate FAILED:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    after = doc.get("after", {})
    speedup = doc.get("speedup")
    print("core-perf regression gate passed:")
    for key in CEILING_KEYS:
        print(f"  {key} = {after.get(key)} (limit {thresholds.get(key)})")
    if speedup:
        print(f"  before/after speedup: {speedup}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
