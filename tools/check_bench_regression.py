"""Gate on a perf benchmark artifact (core-perf or traffic-perf).

Usage::

    python tools/check_bench_regression.py \
        benchmarks/results/BENCH_core.json \
        benchmarks/core_perf_thresholds.json

Compares the *machine-normalised* metrics of the artifact's ``after``
block (wall clocks divided by the frozen calibration workload, so the
numbers are comparable across machines) against the committed
thresholds, and fails when any metric exceeds its threshold.  The
thresholds are set ~25 % above the measured values: CI noise passes, a
real hot-path regression does not.  Kept in a script so the CI job and
local runs share one definition of "pass".

The thresholds file *is* the contract: every key ending in ``_norm``
is a ceiling (lower is better), every key ending in ``_min`` is a
floor on the metric named without the suffix (higher is better), and
keys starting with ``_`` are comments.  That makes the script artifact-
agnostic — BENCH_core.json and BENCH_traffic.json share it, each with
its own thresholds file.
"""

import json
import sys


def classify(thresholds):
    """Split a thresholds doc into (ceiling_keys, floor_keys)."""
    ceilings, floors = [], []
    for key in sorted(thresholds):
        if key.startswith("_"):
            continue  # comment keys
        if key.endswith("_min"):
            floors.append(key)
        else:
            ceilings.append(key)
    return ceilings, floors


def check(doc, thresholds):
    """Return a list of human-readable violations (empty == pass)."""
    after = doc.get("after")
    if not after:
        return ["artifact has no 'after' block — run the benchmark "
                "module with `--phase after` first"]
    ceilings, floors = classify(thresholds)
    if not ceilings and not floors:
        return ["thresholds file bounds nothing (no non-comment keys)"]
    problems = []
    for key in ceilings:
        limit = thresholds[key]
        value = after.get(key)
        if value is None:
            problems.append(f"missing metric for threshold {key!r} "
                            f"(limit={limit})")
        elif value > limit:
            problems.append(f"{key} = {value} exceeds threshold {limit} "
                            f"({value / limit - 1.0:+.1%})")
    for key in floors:
        limit = thresholds[key]
        value = after.get(key.removesuffix("_min"))
        if value is None:
            problems.append(f"missing metric for threshold {key!r} "
                            f"(limit={limit})")
        elif value < limit:
            problems.append(f"{key.removesuffix('_min')} = {value} below "
                            f"floor {limit} ({value / limit - 1.0:+.1%})")
    return problems


def main(argv=None):
    """Validate a benchmark artifact against thresholds; return status."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[0]) as fh:
        doc = json.load(fh)
    with open(argv[1]) as fh:
        thresholds = json.load(fh)
    problems = check(doc, thresholds)
    if problems:
        print(f"perf regression gate FAILED ({argv[0]}):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    after = doc.get("after", {})
    speedup = doc.get("speedup")
    ceilings, floors = classify(thresholds)
    print(f"perf regression gate passed ({argv[0]}):")
    for key in ceilings:
        print(f"  {key} = {after.get(key)} (limit {thresholds[key]})")
    for key in floors:
        metric = key.removesuffix("_min")
        print(f"  {metric} = {after.get(metric)} (floor {thresholds[key]})")
    if speedup:
        print(f"  before/after speedup: {speedup}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
